package hclock

import (
	"testing"
)

// hierHarness drives a bare Hier engine with synthetic per-tenant
// backlogs, the way an external caller (the sharded backend) does: the
// harness owns the queues (here just counters), the engine owns the tags.
type hierHarness struct {
	h       *Hier
	tenants []*Tenant
	backlog []int
}

func newHierHarness(cfg Config, specs [][3]uint64) *hierHarness {
	hh := &hierHarness{h: NewHier(cfg)}
	for i, sp := range specs {
		t := &Tenant{}
		hh.h.Init(t, sp[0], sp[1], sp[2])
		t.Self = i
		hh.tenants = append(hh.tenants, t)
		hh.backlog = append(hh.backlog, 0)
	}
	return hh
}

func (hh *hierHarness) fill(tenant, n int, now int64) {
	was := hh.backlog[tenant]
	hh.backlog[tenant] += n
	if was == 0 && n > 0 {
		hh.h.Activate(hh.tenants[tenant], now)
	}
}

// serve runs one pick/charge/requeue cycle and returns the served tenant
// index, or -1 when the engine refuses.
func (hh *hierHarness) serve(now int64, size uint64) int {
	t, ok := hh.h.Pick(now)
	if !ok {
		return -1
	}
	i := t.Self.(int)
	hh.backlog[i]--
	hh.h.Charge(t, size, now)
	if hh.backlog[i] > 0 {
		hh.h.Requeue(t, now)
	} else {
		hh.h.Idle(t)
	}
	return i
}

// TestHierProportionalShares: with no reservations or limits, service
// splits by weight across every backend.
func TestHierProportionalShares(t *testing.T) {
	for _, be := range []Backend{BackendEiffel, BackendHeap, BackendApprox} {
		hh := newHierHarness(Config{Backend: be}, [][3]uint64{
			{0, 0, 3},
			{0, 0, 1},
		})
		hh.fill(0, 1<<20, 0)
		hh.fill(1, 1<<20, 0)
		served := [2]int{}
		for i := 0; i < 8000; i++ {
			w := hh.serve(int64(i), 1500)
			if w < 0 {
				t.Fatalf("%v: engine refused with backlog", be)
			}
			served[w]++
		}
		share := float64(served[0]) / 8000
		if share < 0.68 || share > 0.82 {
			t.Fatalf("%v: weight-3 tenant share %.3f, want ~0.75", be, share)
		}
	}
}

// TestHierReservationPreference: a due reservation clock preempts a
// smaller share tag.
func TestHierReservationPreference(t *testing.T) {
	hh := newHierHarness(Config{}, [][3]uint64{
		{400e6, 0, 1}, // reservation holder, small weight share alone
		{0, 0, 16},    // heavyweight share tenant
	})
	hh.fill(0, 1<<20, 0)
	hh.fill(1, 1<<20, 0)
	// Serve at 1 Gbps pacing (12 us per 1500B packet): the reservation
	// needs 40% of service.
	served := [2]int{}
	now := int64(0)
	for i := 0; i < 5000; i++ {
		w := hh.serve(now, 1500)
		if w < 0 {
			t.Fatal("engine refused with backlog")
		}
		served[w]++
		now += 12_000
	}
	if share := float64(served[0]) / 5000; share < 0.36 || share > 0.46 {
		t.Fatalf("reservation tenant share %.3f, want ~0.40", share)
	}
}

// TestHierParkAndMigrate: an over-limit tenant parks; the engine refuses
// while everyone is parked and NextEvent names the release time; at that
// time the tenant migrates back and serves again.
func TestHierParkAndMigrate(t *testing.T) {
	hh := newHierHarness(Config{}, [][3]uint64{
		{0, 100e6, 1}, // 100 Mbps cap: 1500B costs 120 us of limit clock
	})
	hh.fill(0, 100, 0)
	if w := hh.serve(0, 1500); w != 0 {
		t.Fatalf("first serve got %d", w)
	}
	// Immediately after, the limit clock is at 120 us: parked.
	if w := hh.serve(1, 1500); w != -1 {
		t.Fatalf("over-limit tenant served (%d)", w)
	}
	// The parked index quantizes tags at TagGranularityNs, so the release
	// time reads back at bucket granularity.
	ev, ok := hh.h.NextEvent(1)
	if !ok || ev < 120_000-2048 || ev > 120_000 {
		t.Fatalf("NextEvent = %d,%v, want ~120000,true", ev, ok)
	}
	if w := hh.serve(ev, 1500); w != 0 {
		t.Fatalf("migrated tenant not served at release time (%d)", w)
	}
}

// TestHierRateDiv: RateDiv renormalizes reservation and limit but not
// weight, and never rounds a configured rate to zero.
func TestHierRateDiv(t *testing.T) {
	h := NewHier(Config{RateDiv: 8})
	var a, b Tenant
	h.Init(&a, 800e6, 8e9, 5)
	if a.ResBps != 100e6 || a.LimitBps != 1e9 || a.Weight != 5 {
		t.Fatalf("renormalized tenant = res %d limit %d weight %d", a.ResBps, a.LimitBps, a.Weight)
	}
	h.Init(&b, 3, 5, 1)
	if b.ResBps != 1 || b.LimitBps != 1 {
		t.Fatalf("sub-div rates rounded to %d/%d, want 1/1", b.ResBps, b.LimitBps)
	}
	var c Tenant
	h.Init(&c, 0, 0, 0)
	if c.ResBps != 0 || c.LimitBps != 0 || c.Weight != 1 {
		t.Fatalf("zero-rate tenant = res %d limit %d weight %d", c.ResBps, c.LimitBps, c.Weight)
	}
}

// TestHierDeactivate: a deactivated tenant never gets picked, from either
// the ready or the parked side.
func TestHierDeactivate(t *testing.T) {
	hh := newHierHarness(Config{}, [][3]uint64{
		{0, 0, 1},
		{0, 100e6, 1},
	})
	hh.fill(0, 10, 0)
	hh.fill(1, 10, 0)
	hh.h.Deactivate(hh.tenants[0]) // ready side
	if w := hh.serve(0, 1500); w != 1 {
		t.Fatalf("served %d, want the remaining tenant 1", w)
	}
	// Tenant 1 is now parked on its limit; deactivate it there.
	hh.h.Deactivate(hh.tenants[1])
	if hh.h.NumActive() != 0 {
		t.Fatalf("NumActive = %d after deactivating everyone", hh.h.NumActive())
	}
	if _, ok := hh.h.Pick(1 << 40); ok {
		t.Fatal("picked from an engine with no active tenants")
	}
}

// TestHierMinShareAndDueReservation: the merge-facing views agree with
// Pick's preference order.
func TestHierMinShareAndDueReservation(t *testing.T) {
	hh := newHierHarness(Config{}, [][3]uint64{
		{500e6, 0, 1},
		{0, 0, 1},
	})
	if _, ok := hh.h.MinShare(); ok {
		t.Fatal("MinShare reported a rank on an empty engine")
	}
	if hh.h.DueReservation(1 << 40) {
		t.Fatal("DueReservation true on an empty engine")
	}
	hh.fill(0, 4, 0)
	hh.fill(1, 4, 0)
	if !hh.h.DueReservation(0) {
		t.Fatal("reservation clock not due at activation time")
	}
	if _, ok := hh.h.MinShare(); !ok {
		t.Fatal("MinShare empty with two ready tenants")
	}
	// Serving at time 0 must take the reservation phase.
	if w := hh.serve(0, 1500); w != 0 {
		t.Fatalf("served %d, want reservation holder 0", w)
	}
}

// TestHierAllocationFree: the pick/charge/requeue cycle and activation
// allocate nothing once the engine is built.
func TestHierAllocationFree(t *testing.T) {
	hh := newHierHarness(Config{}, [][3]uint64{
		{100e6, 0, 2},
		{0, 900e6, 1},
		{0, 0, 4},
	})
	for i := range hh.tenants {
		hh.fill(i, 1<<30, 0)
	}
	now := int64(0)
	allocs := testing.AllocsPerRun(2000, func() {
		hh.serve(now, 1500)
		now += 12_000
	})
	if allocs != 0 {
		t.Fatalf("pick/charge/requeue cycle allocates %.1f/op", allocs)
	}
}
