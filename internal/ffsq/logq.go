package ffsq

import (
	"math/bits"

	"eiffel/internal/bucket"
)

// LogQueue prototypes the non-uniform bucket granularity the paper leaves
// as future work (§5.2: granularity "dynamically set to achieve the result
// of at least one packet per bucket"). Bucket widths grow geometrically
// with distance from the base rank — floating-point style buckets with an
// m-bit mantissa — so one queue covers a huge rank span with relative
// precision 2^-(m-1) while near-base ranks keep fine granularity. That is
// exactly the precision profile a pacer wants: exact for imminent
// deadlines, coarse for far-future ones.
//
// Layout over r = (rank - base) / gran0:
//
//	r < 2^m:  one bucket per unit              (linear region)
//	else:     e = Len64(r) - m >= 1,
//	          bucket = 2^m + (e-1)*2^(m-1) + ((r>>e) - 2^(m-1))
//
// The mapping is monotone in rank, so FIFO buckets plus the hierarchical
// FFS index give the usual O(1) dequeue-min.
type LogQueue struct {
	idx   *Hier
	arr   *bucket.Array
	base  uint64
	gran0 uint64
	m     uint
	total int
}

// LogOptions sizes a LogQueue.
type LogOptions struct {
	// Granularity is the width of the finest (near-base) buckets.
	// Required.
	Granularity uint64
	// MantissaBits sets relative precision 2^-(MantissaBits-1) outside
	// the linear region (default 6: ~3% of the rank's distance).
	MantissaBits uint
	// Octaves bounds the covered span: the queue spans
	// [base, base + 2^(MantissaBits+Octaves)*Granularity). Default 32.
	Octaves uint
	// Base is the rank of the first bucket.
	Base uint64
}

// NewLogQueue returns a log-scale bucketed min-queue.
func NewLogQueue(opt LogOptions) *LogQueue {
	if opt.Granularity == 0 {
		panic("ffsq: NewLogQueue needs a positive granularity")
	}
	if opt.MantissaBits == 0 {
		opt.MantissaBits = 6
	}
	if opt.MantissaBits < 2 || opt.MantissaBits > 20 {
		panic("ffsq: MantissaBits must be in [2, 20]")
	}
	if opt.Octaves == 0 {
		opt.Octaves = 32
	}
	total := (1 << opt.MantissaBits) + int(opt.Octaves)*(1<<(opt.MantissaBits-1))
	return &LogQueue{
		idx:   NewHier(total),
		arr:   bucket.NewArray(total),
		base:  opt.Base,
		gran0: opt.Granularity,
		m:     opt.MantissaBits,
		total: total,
	}
}

// Len returns the number of queued elements.
func (q *LogQueue) Len() int { return q.arr.Len() }

// NumBuckets returns the total bucket count.
func (q *LogQueue) NumBuckets() int { return q.total }

// bucketFor maps a rank to its bucket index, clamping at both ends.
func (q *LogQueue) bucketFor(rank uint64) int {
	if rank < q.base {
		return 0
	}
	r := (rank - q.base) / q.gran0
	if r < 1<<q.m {
		return int(r)
	}
	e := uint(bits.Len64(r)) - q.m
	i := 1<<q.m + (int(e)-1)<<(q.m-1) + int((r>>e)-1<<(q.m-1))
	if i >= q.total {
		return q.total - 1
	}
	return i
}

// bucketStart returns the lowest rank mapped to bucket i.
func (q *LogQueue) bucketStart(i int) uint64 {
	if i < 1<<q.m {
		return q.base + uint64(i)*q.gran0
	}
	off := i - 1<<q.m
	e := uint(off>>(q.m-1)) + 1
	mant := uint64(off & (1<<(q.m-1) - 1))
	return q.base + ((1<<(q.m-1))+mant)<<e*q.gran0
}

// BucketWidth returns the rank width of the bucket holding rank — the
// quantization error bound at that distance from base.
func (q *LogQueue) BucketWidth(rank uint64) uint64 {
	if rank < q.base {
		return q.gran0
	}
	r := (rank - q.base) / q.gran0
	if r < 1<<q.m {
		return q.gran0
	}
	e := uint(bits.Len64(r)) - q.m
	return q.gran0 << e
}

// Enqueue inserts n with the given rank.
func (q *LogQueue) Enqueue(n *bucket.Node, rank uint64) {
	i := q.bucketFor(rank)
	if q.arr.Push(i, n, rank) {
		q.idx.Set(i)
	}
}

// DequeueMin removes and returns the FIFO head of the lowest non-empty
// bucket, or nil.
func (q *LogQueue) DequeueMin() *bucket.Node {
	i := q.idx.Min()
	if i < 0 {
		return nil
	}
	n, empty := q.arr.PopFront(i)
	if empty {
		q.idx.Clear(i)
	}
	return n
}

// PeekMin returns the start rank of the lowest non-empty bucket.
func (q *LogQueue) PeekMin() (uint64, bool) {
	i := q.idx.Min()
	if i < 0 {
		return 0, false
	}
	return q.bucketStart(i), true
}

// Remove detaches n in O(1).
func (q *LogQueue) Remove(n *bucket.Node) {
	i := n.BucketIndex()
	if q.arr.Remove(n) {
		q.idx.Clear(i)
	}
}
