// Package ffsq implements the Find-First-Set based integer priority queues
// from §3.1.1 of the Eiffel paper (NSDI 2019): a flat multi-word bitmap (the
// Linux SCHED_FIFO style sequential scan), a hierarchical bitmap with
// branching factor 64 (the PIQ style tree), a fixed-range bucketed queue
// built on either index, and the paper's central contribution — the circular
// hierarchical FFS queue (cFFS) that follows a moving rank range with two
// pointer-swapped halves.
//
// All queues store intrusive bucket.Node handles, keep elements FIFO within
// a bucket, and find the minimum (or maximum) non-empty bucket with a
// constant number of machine FFS operations (math/bits compiles to
// TZCNT/LZCNT on amd64).
package ffsq

import "math/bits"

// Index tracks which buckets of a fixed-size array are non-empty and finds
// extreme non-empty buckets. Implementations: Bitmap (flat scan) and Hier
// (hierarchical, O(log64 n) worst case independent of occupancy).
type Index interface {
	// Set marks bucket i non-empty. Idempotent.
	Set(i int)
	// Clear marks bucket i empty. Idempotent.
	Clear(i int)
	// Test reports whether bucket i is marked non-empty.
	Test(i int) bool
	// Min returns the smallest marked bucket, or -1 if none.
	Min() int
	// Max returns the largest marked bucket, or -1 if none.
	Max() int
	// NextFrom returns the smallest marked bucket >= i, or -1 if none.
	NextFrom(i int) int
	// Empty reports whether no bucket is marked.
	Empty() bool
	// Size returns the number of tracked buckets.
	Size() int
}

// Bitmap is a flat multi-word occupancy bitmap. Finding the minimum scans
// words sequentially, which is O(words) worst case — efficient only for a
// small number of words (the paper's example: the kernel's 100 realtime
// priorities over two 64-bit words).
type Bitmap struct {
	words []uint64
	n     int
	count int
}

// NewBitmap returns a Bitmap tracking n buckets.
func NewBitmap(n int) *Bitmap {
	if n <= 0 {
		panic("ffsq: NewBitmap needs a positive size")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Size returns the number of tracked buckets.
func (b *Bitmap) Size() int { return b.n }

// Empty reports whether no bucket is marked.
func (b *Bitmap) Empty() bool { return b.count == 0 }

// Test reports whether bucket i is marked.
func (b *Bitmap) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set marks bucket i.
func (b *Bitmap) Set(i int) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

// Clear unmarks bucket i.
func (b *Bitmap) Clear(i int) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.count--
	}
}

// Min returns the smallest marked bucket, or -1.
func (b *Bitmap) Min() int {
	if b.count == 0 {
		return -1
	}
	for w, word := range b.words {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Max returns the largest marked bucket, or -1.
func (b *Bitmap) Max() int {
	if b.count == 0 {
		return -1
	}
	for w := len(b.words) - 1; w >= 0; w-- {
		if word := b.words[w]; word != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(word)
		}
	}
	return -1
}

// NextFrom returns the smallest marked bucket >= i, or -1.
func (b *Bitmap) NextFrom(i int) int {
	if b.count == 0 || i >= b.n {
		return -1
	}
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if word := b.words[w] &^ (1<<(uint(i)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for w++; w < len(b.words); w++ {
		if word := b.words[w]; word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Hier is a hierarchical occupancy bitmap with branching factor 64: bit j of
// a word at level l+1 summarizes word j at level l. Find-min descends the
// tree with one FFS per level — O(log64 n) operations regardless of how many
// buckets are marked, the property Objective 1 of the paper relies on.
type Hier struct {
	levels [][]uint64
	n      int
	count  int
}

// NewHier returns a hierarchical index tracking n buckets.
func NewHier(n int) *Hier {
	if n <= 0 {
		panic("ffsq: NewHier needs a positive size")
	}
	h := &Hier{n: n}
	for bitsLeft := n; ; {
		words := (bitsLeft + 63) / 64
		h.levels = append(h.levels, make([]uint64, words))
		if words == 1 {
			break
		}
		bitsLeft = words
	}
	return h
}

// Size returns the number of tracked buckets.
func (h *Hier) Size() int { return h.n }

// Empty reports whether no bucket is marked.
//
//eiffel:hotpath
func (h *Hier) Empty() bool { return h.count == 0 }

// Count returns the number of marked buckets.
func (h *Hier) Count() int { return h.count }

// Test reports whether bucket i is marked.
//
//eiffel:hotpath
func (h *Hier) Test(i int) bool { return h.levels[0][i>>6]&(1<<(uint(i)&63)) != 0 }

// Set marks bucket i, updating summary levels.
//
//eiffel:hotpath
func (h *Hier) Set(i int) {
	if h.Test(i) {
		return
	}
	h.count++
	for lvl := range h.levels {
		w, m := i>>6, uint64(1)<<(uint(i)&63)
		old := h.levels[lvl][w]
		h.levels[lvl][w] = old | m
		if old != 0 {
			return // summary above already set
		}
		i = w
	}
}

// Clear unmarks bucket i, updating summary levels.
//
//eiffel:hotpath
func (h *Hier) Clear(i int) {
	if !h.Test(i) {
		return
	}
	h.count--
	for lvl := range h.levels {
		w, m := i>>6, uint64(1)<<(uint(i)&63)
		h.levels[lvl][w] &^= m
		if h.levels[lvl][w] != 0 {
			return // word still non-empty: summary above unchanged
		}
		i = w
	}
}

// Min returns the smallest marked bucket, or -1.
//
//eiffel:hotpath
func (h *Hier) Min() int {
	if h.count == 0 {
		return -1
	}
	top := len(h.levels) - 1
	j := bits.TrailingZeros64(h.levels[top][0])
	for lvl := top - 1; lvl >= 0; lvl-- {
		j = j<<6 + bits.TrailingZeros64(h.levels[lvl][j])
	}
	return j
}

// Max returns the largest marked bucket, or -1.
func (h *Hier) Max() int {
	if h.count == 0 {
		return -1
	}
	top := len(h.levels) - 1
	j := 63 - bits.LeadingZeros64(h.levels[top][0])
	for lvl := top - 1; lvl >= 0; lvl-- {
		j = j<<6 + 63 - bits.LeadingZeros64(h.levels[lvl][j])
	}
	return j
}

// NextFrom returns the smallest marked bucket >= i, or -1. This is the
// operation behind SoonestDeadline() in the Eiffel qdisc (§4).
func (h *Hier) NextFrom(i int) int {
	if h.count == 0 || i >= h.n {
		return -1
	}
	if i < 0 {
		i = 0
	}
	idx := i
	for lvl := 0; lvl < len(h.levels); lvl++ {
		words := h.levels[lvl]
		w, b := idx>>6, uint(idx)&63
		if w < len(words) {
			if masked := words[w] &^ (1<<b - 1); masked != 0 {
				j := w<<6 + bits.TrailingZeros64(masked)
				for lvl > 0 {
					lvl--
					j = j<<6 + bits.TrailingZeros64(h.levels[lvl][j])
				}
				return j
			}
		}
		idx = w + 1
	}
	return -1
}
