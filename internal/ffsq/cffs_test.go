package ffsq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func node(v uint64) *bucket.Node { return &bucket.Node{Data: v} }

func TestFixedOrdering(t *testing.T) {
	q := NewFixed(128, 1, 0)
	ranks := []uint64{5, 3, 99, 0, 3, 127, 64}
	for _, r := range ranks {
		q.Enqueue(node(r), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		n := q.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want rank %d", i, n, want)
		}
	}
	if q.DequeueMin() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestFixedMaxAndClamp(t *testing.T) {
	q := NewFixed(10, 10, 100) // covers [100, 200)
	q.Enqueue(node(5), 5)      // clamps low -> bucket 0
	q.Enqueue(node(150), 150)
	q.Enqueue(node(999), 999) // clamps high -> bucket 9
	lo, hi := q.Clamped()
	if lo != 1 || hi != 1 {
		t.Fatalf("Clamped = (%d,%d), want (1,1)", lo, hi)
	}
	if n := q.DequeueMax(); n.Rank() != 999 {
		t.Fatalf("DequeueMax rank = %d, want 999", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 5 {
		t.Fatalf("DequeueMin rank = %d, want 5", n.Rank())
	}
	if r, ok := q.PeekMin(); !ok || r != 150 {
		t.Fatalf("PeekMin = (%d,%v), want (150,true)", r, ok)
	}
}

func TestFixedFIFOWithinBucket(t *testing.T) {
	q := NewFixed(4, 100, 0)
	a, b, c := node(1), node(2), node(3)
	q.Enqueue(a, 150) // bucket 1
	q.Enqueue(b, 199) // bucket 1
	q.Enqueue(c, 101) // bucket 1
	for i, want := range []*bucket.Node{a, b, c} {
		if got := q.DequeueMin(); got != want {
			t.Fatalf("dequeue %d: FIFO within bucket violated", i)
		}
	}
}

func TestFixedRemove(t *testing.T) {
	q := NewFixed(16, 1, 0)
	n1, n2 := node(3), node(3)
	q.Enqueue(n1, 3)
	q.Enqueue(n2, 3)
	q.Remove(n1)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if got := q.DequeueMin(); got != n2 {
		t.Fatal("expected n2 after removing n1")
	}
	if q.Contains(n2) {
		t.Fatal("dequeued node should not be contained")
	}
}

func TestCFFSBasicOrdering(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 8, Granularity: 1})
	ranks := []uint64{4, 1, 7, 2, 2, 0}
	for _, r := range ranks {
		q.Enqueue(node(r), r)
	}
	var got []uint64
	for {
		n := q.DequeueMin()
		if n == nil {
			break
		}
		got = append(got, n.Rank())
	}
	want := []uint64{0, 1, 2, 2, 4, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCFFSRotation(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 1})
	// Fill primary [0,4) and secondary [4,8).
	for r := uint64(0); r < 8; r++ {
		q.Enqueue(node(r), r)
	}
	for r := uint64(0); r < 8; r++ {
		n := q.DequeueMin()
		if n.Rank() != r {
			t.Fatalf("rank %d, want %d", n.Rank(), r)
		}
	}
	rot, _, _, _ := q.Stats()
	if rot == 0 {
		t.Fatal("expected at least one rotation")
	}
}

func TestCFFSOverflowRedistribution(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 1})
	// Window is [0,8). 9 and 10 overflow; after draining and rotating they
	// must come out in true rank order thanks to redistribution.
	for _, r := range []uint64{0, 10, 9, 5} {
		q.Enqueue(node(r), r)
	}
	_, ovf, _, _ := q.Stats()
	if ovf != 2 {
		t.Fatalf("overflows = %d, want 2", ovf)
	}
	want := []uint64{0, 5, 9, 10}
	for i, w := range want {
		n := q.DequeueMin()
		if n == nil || n.Rank() != w {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, w)
		}
	}
}

func TestCFFSNoRedistributeKeepsFIFOOverflow(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 1, NoRedistribute: true})
	// 10 then 9 overflow in that arrival order; without redistribution the
	// overflow bucket stays FIFO, so 10 is served before 9 once reached.
	for _, r := range []uint64{0, 10, 9} {
		q.Enqueue(node(r), r)
	}
	got := []uint64{}
	for n := q.DequeueMin(); n != nil; n = q.DequeueMin() {
		got = append(got, n.Rank())
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 10 || got[2] != 9 {
		t.Fatalf("order = %v, want [0 10 9]", got)
	}
}

func TestCFFSFastForward(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 8, Granularity: 1})
	q.Enqueue(node(0), 0)
	// Very far ahead: would need ~1e6/8 rotations without fast-forward.
	q.Enqueue(node(1000000), 1000000)
	q.Enqueue(node(1000005), 1000005)
	if n := q.DequeueMin(); n.Rank() != 0 {
		t.Fatalf("first = %d", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 1000000 {
		t.Fatalf("second = %d", n.Rank())
	}
	_, _, ff, _ := q.Stats()
	if ff == 0 {
		t.Fatal("expected a fast-forward")
	}
	if n := q.DequeueMin(); n.Rank() != 1000005 {
		t.Fatalf("third = %d", n.Rank())
	}
}

func TestCFFSEmptyReanchor(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 10})
	q.Enqueue(node(35), 35)
	if n := q.DequeueMin(); n.Rank() != 35 {
		t.Fatal("wrong element")
	}
	// Queue empty: enqueueing far ahead must re-anchor the window forward
	// at enqueue time — not dump the element into the overflow bucket and
	// leave the next dequeue to fast-forward and redistribute.
	rotBefore, ovBefore, ffBefore, _ := q.Stats()
	q.Enqueue(node(900000), 900000)
	_, ovAfter, _, _ := q.Stats()
	if ovAfter != ovBefore {
		t.Fatal("empty-queue enqueue beyond the window landed in the overflow bucket")
	}
	if r, ok := q.PeekMin(); !ok || r != 900000 {
		t.Fatalf("PeekMin = (%d,%v)", r, ok)
	}
	rotAfter, _, ffAfter, _ := q.Stats()
	if rotAfter != rotBefore {
		t.Fatal("empty-queue enqueue should not rotate")
	}
	if ffAfter != ffBefore {
		t.Fatal("empty-queue enqueue should not need a dequeue-side fast-forward")
	}
	if n := q.DequeueMin(); n == nil || n.Rank() != 900000 {
		t.Fatal("re-anchored element lost")
	}
}

// TestCFFSEmptyReanchorStaysExact drives the empty→far-ahead→refill cycle
// an idle-then-bursty shaper produces and checks ordering stays exact with
// zero fast-forwards — the pattern that used to degrade: every idle gap
// longer than the window forced an overflow + fast-forward + redistribute.
func TestCFFSEmptyReanchorStaysExact(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 8, Granularity: 1})
	base := uint64(0)
	for cycle := 0; cycle < 50; cycle++ {
		base += 1 << 20 // far beyond the 16-bucket window
		// The first arrival anchors the window (in the last primary
		// bucket); the rest land inside the forward half.
		ranks := []uint64{base, base + 5, base + 3, base + 8}
		for _, r := range ranks {
			q.Enqueue(node(r), r)
		}
		want := []uint64{base, base + 3, base + 5, base + 8}
		for i, w := range want {
			if n := q.DequeueMin(); n == nil || n.Rank() != w {
				t.Fatalf("cycle %d pos %d: got %v, want %d", cycle, i, n, w)
			}
		}
	}
	_, overflows, ffs, _ := q.Stats()
	if overflows != 0 || ffs != 0 {
		t.Fatalf("overflows=%d fastForwards=%d; want 0 with empty-queue re-anchoring", overflows, ffs)
	}
}

func TestCFFSStragglerClamped(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 1, Start: 100})
	q.Enqueue(node(100), 100)
	q.Enqueue(node(103), 103)
	q.Enqueue(node(50), 50) // in the past: clamped to the front bucket
	// The straggler shares bucket 0 with rank 100 (FIFO) but must beat 103.
	if n := q.DequeueMin(); n.Rank() != 100 {
		t.Fatalf("first = %d, want 100 (FIFO head of front bucket)", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 50 {
		t.Fatalf("second = %d, want the clamped straggler", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 103 {
		t.Fatalf("third = %d, want 103", n.Rank())
	}
	_, _, _, clamped := q.Stats()
	if clamped != 1 {
		t.Fatalf("clampedLow = %d, want 1", clamped)
	}
}

func TestCFFSPeekMinQuantized(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 8, Granularity: 100})
	q.Enqueue(node(557), 557)
	r, ok := q.PeekMin()
	if !ok || r != 500 {
		t.Fatalf("PeekMin = (%d,%v), want bucket start 500", r, ok)
	}
	if f := q.FrontMin(); f == nil || f.Rank() != 557 {
		t.Fatal("FrontMin should expose the head node")
	}
	if q.Len() != 1 {
		t.Fatal("peek must not remove")
	}
}

func TestCFFSRemove(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 4, Granularity: 1})
	n1, n2, n3 := node(2), node(6), node(9)
	q.Enqueue(n1, 2) // primary
	q.Enqueue(n2, 6) // secondary
	q.Enqueue(n3, 9) // overflow
	q.Remove(n2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if got := q.DequeueMin(); got != n1 {
		t.Fatal("want n1 first")
	}
	if got := q.DequeueMin(); got != n3 {
		t.Fatal("want n3 second")
	}
}

// TestQuickCFFSMonotonicWithProgression models the intended workload: a rank
// range that moves forward (timestamps). With redistribution enabled,
// dequeues must come out in nondecreasing bucket order even with overflow.
func TestQuickCFFSMonotonicWithProgression(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nb = 16
		const gran = 8
		q := NewCFFS(CFFSOptions{NumBuckets: nb, Granularity: gran})
		base := uint64(0)
		// floor is the model's lower bound for sortable enqueues: buckets
		// already served, and — since an empty queue re-anchors its window
		// at the first arrival — the bucket of any element enqueued while
		// the queue was empty. Ranks below it would be straggler-clamped
		// (served immediately), which the paper permits but this ordering
		// model excludes.
		floor := uint64(0)
		queued := 0
		for op := 0; op < 800; op++ {
			if rng.Intn(2) == 0 || queued == 0 {
				// Ranks drift forward, occasionally jumping past the window.
				r := base + uint64(rng.Intn(3*nb*gran))
				if r/gran < floor {
					r = floor * gran
				}
				if queued == 0 && r/gran > floor {
					floor = r / gran
				}
				q.Enqueue(node(r), r)
				queued++
				if rng.Intn(8) == 0 {
					base += uint64(rng.Intn(nb * gran))
				}
			} else {
				n := q.DequeueMin()
				if n == nil {
					return false
				}
				queued--
				b := n.Rank() / gran
				if b < floor {
					return false // went backwards
				}
				floor = b
			}
		}
		return q.Len() == queued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCFFSDrainSorted enqueues a random batch then drains fully; the
// output bucket sequence must be sorted and contain every element.
func TestQuickCFFSDrainSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		// Anchor the window at the smallest rank — and enqueue it first:
		// cFFS serves a forward-moving range, so ranks below the anchor
		// would (by design) be clamped rather than sorted, and an empty
		// queue re-anchors its window at whatever arrives first.
		lo := uint64(1 << 62)
		loIdx := -1
		for i, v := range raw {
			if r := uint64(v % 4096); r < lo {
				lo, loIdx = r, i
			}
		}
		q := NewCFFS(CFFSOptions{NumBuckets: 32, Granularity: 4, Start: lo})
		if loIdx >= 0 {
			raw[0], raw[loIdx] = raw[loIdx], raw[0]
		}
		for _, v := range raw {
			r := uint64(v % 4096)
			q.Enqueue(node(r), r)
		}
		last := uint64(0)
		count := 0
		for {
			n := q.DequeueMin()
			if n == nil {
				break
			}
			b := n.Rank() / 4
			if b < last {
				return false
			}
			last = b
			count++
		}
		return count == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCFFSEnqueueDequeue(b *testing.B) {
	q := NewCFFS(CFFSOptions{NumBuckets: 16384, Granularity: 1})
	nodes := make([]*bucket.Node, 1024)
	for i := range nodes {
		nodes[i] = &bucket.Node{}
	}
	rng := rand.New(rand.NewSource(1))
	for i, n := range nodes {
		q.Enqueue(n, uint64(i)+uint64(rng.Intn(8192)))
	}
	b.ResetTimer()
	base := uint64(8192)
	for i := 0; i < b.N; i++ {
		n := q.DequeueMin()
		base++
		q.Enqueue(n, base+uint64(rng.Intn(8192)))
	}
}

// TestCFFSEnqueueBatchEquivalent checks the batched enqueue hook against
// the per-element path: same elements, same ranks, same drain order, same
// counters — including the first-element empty-queue re-anchoring.
func TestCFFSEnqueueBatchEquivalent(t *testing.T) {
	mk := func() *CFFS { return NewCFFS(CFFSOptions{NumBuckets: 16, Granularity: 4}) }
	ranks := []uint64{500, 3, 99, 0, 3, 127, 64, 500, 1 << 20, 12}

	ref := mk()
	for _, r := range ranks {
		ref.Enqueue(node(r), r)
	}
	bq := mk()
	ns := make([]*bucket.Node, len(ranks))
	for i, r := range ranks {
		ns[i] = node(r)
	}
	bq.EnqueueBatch(ns, ranks)

	if ref.Len() != bq.Len() {
		t.Fatalf("Len: per-element %d vs batch %d", ref.Len(), bq.Len())
	}
	for i := 0; ; i++ {
		a, b := ref.DequeueMin(), bq.DequeueMin()
		if (a == nil) != (b == nil) {
			t.Fatalf("drain %d: per-element %v vs batch %v", i, a, b)
		}
		if a == nil {
			break
		}
		if a.Rank() != b.Rank() {
			t.Fatalf("drain %d: per-element rank %d vs batch rank %d", i, a.Rank(), b.Rank())
		}
	}
}

// TestCFFSScratchShrinksAfterBurst is the redistribution-buffer retention
// regression: one huge overflow burst must not leave the queue holding a
// burst-sized scratch capacity (plus its stale node pointers) forever.
func TestCFFSScratchShrinksAfterBurst(t *testing.T) {
	q := NewCFFS(CFFSOptions{NumBuckets: 8, Granularity: 1})
	q.Enqueue(node(0), 0)
	// A burst far beyond the window piles into the overflow bucket...
	const burst = 4 * scratchRetainCap
	for i := 0; i < burst; i++ {
		q.Enqueue(node(uint64(1000000+i)), uint64(1000000+i))
	}
	// ...and the drain fast-forwards, cycling the whole burst through the
	// scratch buffer (possibly repeatedly, via overflow redistribution).
	var prev uint64
	for i := 0; q.Len() > 0; i++ {
		n := q.DequeueMin()
		if n == nil {
			t.Fatalf("nil dequeue with %d queued", q.Len())
		}
		if n.Rank() < prev {
			t.Fatalf("dequeue %d: rank %d after %d", i, n.Rank(), prev)
		}
		prev = n.Rank()
	}
	_, _, ff, _ := q.Stats()
	if ff == 0 {
		t.Fatal("burst did not exercise a fast-forward")
	}
	if got := cap(q.scratch); got > scratchRetainCap {
		t.Fatalf("scratch capacity %d retained after the burst, want <= %d", got, scratchRetainCap)
	}
}
