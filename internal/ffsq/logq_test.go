package ffsq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func TestLogQueueBucketMappingMonotone(t *testing.T) {
	q := NewLogQueue(LogOptions{Granularity: 1, MantissaBits: 4, Octaves: 20})
	last := -1
	// Exhaustive over the linear region and the first octaves.
	for r := uint64(0); r < 1<<16; r++ {
		i := q.bucketFor(r)
		if i < last {
			t.Fatalf("bucket mapping not monotone at rank %d: %d < %d", r, i, last)
		}
		if i >= q.NumBuckets() {
			t.Fatalf("bucket %d out of range at rank %d", i, r)
		}
		last = i
	}
}

func TestLogQueueBucketStartInverts(t *testing.T) {
	q := NewLogQueue(LogOptions{Granularity: 10, MantissaBits: 5, Octaves: 24})
	for _, r := range []uint64{0, 9, 10, 315, 320, 1 << 10, 1 << 16, 1 << 20, 123456789} {
		i := q.bucketFor(r)
		start := q.bucketStart(i)
		if start > r {
			t.Fatalf("bucketStart(%d)=%d exceeds rank %d", i, start, r)
		}
		if r-start > q.BucketWidth(r) {
			t.Fatalf("rank %d maps %d past its bucket width %d", r, r-start, q.BucketWidth(r))
		}
	}
}

func TestLogQueueRelativePrecision(t *testing.T) {
	const m = 6
	q := NewLogQueue(LogOptions{Granularity: 1, MantissaBits: m, Octaves: 40})
	// Outside the linear region the bucket width must stay within
	// 2^-(m-1) of the rank (relative precision).
	for _, r := range []uint64{1 << 10, 1 << 20, 1 << 30, 1 << 40} {
		w := q.BucketWidth(r)
		if float64(w)/float64(r) > 1.0/float64(int(1)<<(m-1))+1e-9 {
			t.Fatalf("rank %d: width %d exceeds relative precision", r, w)
		}
	}
	// Inside the linear region the width is exactly the base granularity.
	if q.BucketWidth(5) != 1 {
		t.Fatal("linear region width")
	}
}

func TestLogQueueDequeueOrderWithinQuantization(t *testing.T) {
	f := func(raw []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewLogQueue(LogOptions{Granularity: 1, MantissaBits: 6, Octaves: 26})
		for _, v := range raw {
			r := uint64(v)
			q.Enqueue(&bucket.Node{}, r)
		}
		_ = rng
		// Dequeue order must be nondecreasing in bucket index, i.e. a
		// later element's rank may precede an earlier one's only within
		// one bucket width.
		lastStart := uint64(0)
		count := 0
		for {
			n := q.DequeueMin()
			if n == nil {
				break
			}
			start := q.bucketStart(q.bucketFor(n.Rank()))
			if start < lastStart {
				return false
			}
			lastStart = start
			count++
		}
		return count == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogQueueVsUniformMemory(t *testing.T) {
	// The selling point: covering [0, 2^38) at 2^-5 relative precision
	// takes ~600 buckets instead of 2^38 uniform ones.
	q := NewLogQueue(LogOptions{Granularity: 1, MantissaBits: 6, Octaves: 32})
	if q.NumBuckets() > 1200 {
		t.Fatalf("log queue uses %d buckets", q.NumBuckets())
	}
	far := uint64(1) << 37
	q.Enqueue(&bucket.Node{}, far)
	q.Enqueue(&bucket.Node{}, 3)
	if n := q.DequeueMin(); n.Rank() != 3 {
		t.Fatalf("near rank must win, got %d", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != far {
		t.Fatalf("far rank lost, got %d", n.Rank())
	}
}

func TestLogQueueRemoveAndPeek(t *testing.T) {
	q := NewLogQueue(LogOptions{Granularity: 1, MantissaBits: 4})
	n1, n2 := &bucket.Node{}, &bucket.Node{}
	q.Enqueue(n1, 100)
	q.Enqueue(n2, 20000)
	if r, ok := q.PeekMin(); !ok || r > 100 {
		t.Fatalf("PeekMin = (%d,%v)", r, ok)
	}
	q.Remove(n1)
	if r, ok := q.PeekMin(); !ok || r > 20000 {
		t.Fatalf("PeekMin after remove = (%d,%v)", r, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Len")
	}
}
