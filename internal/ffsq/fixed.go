package ffsq

import "eiffel/internal/bucket"

// Fixed is a bucketed integer priority queue over the fixed rank range
// [base, base+numBuckets*gran). Ranks below the range are clamped to the
// first bucket, ranks at or above it to the last bucket (the paper's
// treatment of out-of-range elements). Elements within one bucket are FIFO
// and effectively share a rank; this quantization is the efficiency/accuracy
// trade the paper makes explicit in §2.
//
// With a Hier index every operation costs O(log64 numBuckets) — a constant
// for a configured queue — and arbitrary removal is O(1), which hClock and
// pFabric style policies use heavily.
type Fixed struct {
	idx  Index
	arr  *bucket.Array
	base uint64
	gran uint64
	nb   uint64

	clampedLow  uint64
	clampedHigh uint64
}

// NewFixed returns a fixed-range queue with numBuckets buckets of width gran
// starting at rank base, using a hierarchical FFS index.
func NewFixed(numBuckets int, gran, base uint64) *Fixed {
	return NewFixedIndex(numBuckets, gran, base, NewHier(numBuckets))
}

// NewFixedFlat is NewFixed with a flat sequential-scan bitmap index, the
// baseline "FFS over M words" variant from §3.1.1.
func NewFixedFlat(numBuckets int, gran, base uint64) *Fixed {
	return NewFixedIndex(numBuckets, gran, base, NewBitmap(numBuckets))
}

// NewFixedIndex builds a fixed-range queue over a caller-supplied index. The
// index size must match numBuckets.
func NewFixedIndex(numBuckets int, gran, base uint64, idx Index) *Fixed {
	if numBuckets <= 0 {
		panic("ffsq: NewFixed needs a positive bucket count")
	}
	if gran == 0 {
		panic("ffsq: NewFixed needs a positive granularity")
	}
	if idx.Size() != numBuckets {
		panic("ffsq: index size does not match bucket count")
	}
	return &Fixed{
		idx:  idx,
		arr:  bucket.NewArray(numBuckets),
		base: base,
		gran: gran,
		nb:   uint64(numBuckets),
	}
}

// Len returns the number of queued elements.
func (q *Fixed) Len() int { return q.arr.Len() }

// NumBuckets returns the configured bucket count.
func (q *Fixed) NumBuckets() int { return int(q.nb) }

// Granularity returns the rank width of one bucket.
func (q *Fixed) Granularity() uint64 { return q.gran }

// Clamped returns how many enqueues fell below and above the range.
func (q *Fixed) Clamped() (low, high uint64) { return q.clampedLow, q.clampedHigh }

func (q *Fixed) bucketFor(rank uint64) int {
	if rank < q.base {
		q.clampedLow++
		return 0
	}
	b := (rank - q.base) / q.gran
	if b >= q.nb {
		q.clampedHigh++
		return int(q.nb - 1)
	}
	return int(b)
}

// Enqueue inserts n with the given rank. The true rank is recorded on the
// node even when the bucket is clamped.
func (q *Fixed) Enqueue(n *bucket.Node, rank uint64) {
	i := q.bucketFor(rank)
	if q.arr.Push(i, n, rank) {
		q.idx.Set(i)
	}
}

// DequeueMin removes and returns the FIFO head of the lowest non-empty
// bucket, or nil if the queue is empty.
func (q *Fixed) DequeueMin() *bucket.Node {
	i := q.idx.Min()
	if i < 0 {
		return nil
	}
	n, empty := q.arr.PopFront(i)
	if empty {
		q.idx.Clear(i)
	}
	return n
}

// DequeueMax removes and returns the FIFO head of the highest non-empty
// bucket, or nil. pFabric-style switches use this to drop the packet of the
// flow with the most remaining work when a port buffer fills.
func (q *Fixed) DequeueMax() *bucket.Node {
	i := q.idx.Max()
	if i < 0 {
		return nil
	}
	n, empty := q.arr.PopFront(i)
	if empty {
		q.idx.Clear(i)
	}
	return n
}

// PeekMax returns the start rank of the highest non-empty bucket without
// removing anything.
func (q *Fixed) PeekMax() (rank uint64, ok bool) {
	i := q.idx.Max()
	if i < 0 {
		return 0, false
	}
	return q.base + uint64(i)*q.gran, true
}

// PeekMin returns the rank of the start of the lowest non-empty bucket
// (quantized to the queue granularity) without removing anything.
func (q *Fixed) PeekMin() (rank uint64, ok bool) {
	i := q.idx.Min()
	if i < 0 {
		return 0, false
	}
	return q.base + uint64(i)*q.gran, true
}

// FrontMin returns the FIFO head of the lowest non-empty bucket without
// removing it, or nil.
func (q *Fixed) FrontMin() *bucket.Node {
	i := q.idx.Min()
	if i < 0 {
		return nil
	}
	return q.arr.Front(i)
}

// Remove detaches n, which must be queued here, in O(1).
func (q *Fixed) Remove(n *bucket.Node) {
	i := n.BucketIndex()
	if q.arr.Remove(n) {
		q.idx.Clear(i)
	}
}

// Contains reports whether n is currently queued here.
func (q *Fixed) Contains(n *bucket.Node) bool { return n.InArray(q.arr) }
