package ffsq

import "eiffel/internal/bucket"

// CFFS is the circular hierarchical FFS-based queue of §3.1.1 — the core
// Eiffel data structure. It serves rank ranges that move forward over time
// (transmission timestamps, virtual finish times) with O(1) amortized
// enqueue and dequeue.
//
// Two fixed halves of numBuckets buckets each cover the window
//
//	[hIndex, hIndex+2*numBuckets) (in bucket units, bucket = rank/gran)
//
// The primary half serves [hIndex, hIndex+nb); the secondary buffers the
// following nb buckets. Elements beyond the whole window land, unsorted, in
// the secondary's last bucket (the overflow bucket). When the primary
// drains, the halves swap by pointer — the "circulation" — hIndex advances
// by nb, and the overflow bucket is re-distributed by true rank so ordering
// degrades only transiently, never permanently.
//
// Ranks below hIndex (stragglers, e.g. a timestamp already in the past) are
// clamped to the front of the primary so they are served immediately.
//
// An empty queue re-anchors the window at whatever rank arrives first —
// backward for ranks behind the window, forward (with nb-1 buckets of
// backward headroom) for ranks beyond it — since with nothing queued no
// other position can matter. Eager anchoring keeps idle→burst transitions
// on the O(1) path: without it, a burst landing past the window of an idle
// queue piles unsorted into the overflow bucket and forces a fast-forward
// plus full redistribution on the next dequeue.
type CFFS struct {
	prim, sec *half
	hIndex    uint64 // lowest bucket number served by the primary half
	nb        uint64
	gran      uint64
	count     int

	redistribute bool
	scratch      []*bucket.Node

	rotations    uint64
	overflows    uint64
	fastForwards uint64
	clampedLow   uint64
}

type half struct {
	idx *Hier
	arr *bucket.Array
}

func newHalf(nb int) *half {
	return &half{idx: NewHier(nb), arr: bucket.NewArray(nb)}
}

// CFFSOptions configures a circular FFS queue.
type CFFSOptions struct {
	// NumBuckets is the number of buckets per half. The queue covers a
	// moving window of 2*NumBuckets buckets. Required.
	NumBuckets int
	// Granularity is the rank width of one bucket (e.g. nanoseconds per
	// bucket for a time-indexed shaper). Required.
	Granularity uint64
	// Start positions the initial window so that Start falls in the first
	// primary bucket.
	Start uint64
	// NoRedistribute disables re-sorting of the overflow bucket on
	// rotation. The paper's base design leaves overflowed elements
	// unsorted; redistribution (the default here) restores exact bucket
	// ordering at amortized O(1) per element and is ablated in the
	// benchmarks.
	NoRedistribute bool
}

// NewCFFS returns a circular hierarchical FFS queue.
func NewCFFS(opt CFFSOptions) *CFFS {
	if opt.NumBuckets <= 0 {
		panic("ffsq: NewCFFS needs a positive bucket count")
	}
	if opt.Granularity == 0 {
		panic("ffsq: NewCFFS needs a positive granularity")
	}
	return &CFFS{
		prim:         newHalf(opt.NumBuckets),
		sec:          newHalf(opt.NumBuckets),
		hIndex:       opt.Start / opt.Granularity,
		nb:           uint64(opt.NumBuckets),
		gran:         opt.Granularity,
		redistribute: !opt.NoRedistribute,
	}
}

// Len returns the number of queued elements.
//
//eiffel:hotpath
func (c *CFFS) Len() int { return c.count }

// NumBuckets returns the per-half bucket count.
func (c *CFFS) NumBuckets() int { return int(c.nb) }

// Granularity returns the rank width of one bucket.
//
//eiffel:hotpath
func (c *CFFS) Granularity() uint64 { return c.gran }

// Horizon returns the rank span covered without overflow: 2*nb*gran.
func (c *CFFS) Horizon() uint64 { return 2 * c.nb * c.gran }

// Stats returns operational counters: half rotations, enqueues that landed
// in the overflow bucket, far-jump fast-forwards, and enqueues clamped
// below the window.
func (c *CFFS) Stats() (rotations, overflows, fastForwards, clampedLow uint64) {
	return c.rotations, c.overflows, c.fastForwards, c.clampedLow
}

// Enqueue inserts n with the given rank. O(1) plus the constant-depth index
// update.
//
//eiffel:hotpath
func (c *CFFS) Enqueue(n *bucket.Node, rank uint64) {
	b := rank / c.gran
	if c.count == 0 {
		if b < c.hIndex {
			// Empty queue and a rank behind the window: slide the window
			// back instead of clamping.
			c.hIndex = b
		} else if b-c.hIndex >= 2*c.nb {
			// The forward mirror: an empty queue holds nothing the window
			// position could matter for, so re-anchor at the rank instead
			// of dropping the element into the overflow bucket — which
			// would force a guaranteed fast-forward plus redistribution on
			// the next dequeue (or, without redistribution, a rotation
			// crawl across the whole gap). The element lands in the LAST
			// primary bucket, keeping nb-1 buckets of backward headroom so
			// slightly smaller ranks arriving next (downward re-ranks, the
			// tail of a concurrent burst) still sort instead of clamping.
			if b >= c.nb-1 {
				c.hIndex = b - (c.nb - 1)
			} else {
				c.hIndex = 0
			}
		}
	}
	c.place(n, rank, b)
	c.count++
}

// EnqueueBatch inserts ns[i] with ranks[i] for every i — the enqueue-side
// batching hook: callers that hold a whole run (the sharded runtime's
// locked ring flushes) insert it through ONE call instead of one interface
// dispatch per element. Exactly equivalent to that sequence of Enqueue
// calls, including the empty-queue re-anchoring on the first element.
//
//eiffel:hotpath
func (c *CFFS) EnqueueBatch(ns []*bucket.Node, ranks []uint64) {
	for i, n := range ns {
		c.Enqueue(n, ranks[i])
	}
}

//eiffel:hotpath
func (c *CFFS) place(n *bucket.Node, rank, b uint64) {
	var h *half
	var i uint64
	// Offsets (never differences of unrelated magnitudes) keep the window
	// arithmetic overflow-safe for ranks near MaxUint64.
	switch {
	case b < c.hIndex:
		c.clampedLow++
		h, i = c.prim, 0
	default:
		switch off := b - c.hIndex; {
		case off < c.nb:
			h, i = c.prim, off
		case off < 2*c.nb:
			h, i = c.sec, off-c.nb
		default:
			c.overflows++
			h, i = c.sec, c.nb-1
		}
	}
	if h.arr.Push(int(i), n, rank) {
		h.idx.Set(int(i))
	}
}

// DequeueMin removes and returns the FIFO head of the lowest non-empty
// bucket, rotating the window as needed, or nil if empty.
//
//eiffel:hotpath
func (c *CFFS) DequeueMin() *bucket.Node {
	if c.count == 0 {
		return nil
	}
	c.advance()
	i := c.prim.idx.Min()
	n, empty := c.prim.arr.PopFront(i)
	if empty {
		c.prim.idx.Clear(i)
	}
	c.count--
	return n
}

// DequeueBatch removes up to len(out) elements whose bucket-quantized rank
// is at most maxRank, in ascending bucket order (FIFO within a bucket),
// writing them to out and returning how many it removed. Popping a whole
// bucket costs one index descent plus one clear, so batch drains skip the
// per-element find-min work DequeueMin pays — the sharded runtime's
// consumer leans on this.
//
//eiffel:hotpath
func (c *CFFS) DequeueBatch(maxRank uint64, out []*bucket.Node) int {
	total := 0
	for total < len(out) && c.count > 0 {
		c.advance()
		i := c.prim.idx.Min()
		if (c.hIndex+uint64(i))*c.gran > maxRank {
			break
		}
		// Whole-bucket fast path: detach the FIFO list in one walk with
		// O(1) bookkeeping. Falls back to per-node pops when the bucket
		// holds more than the batch has room for.
		if k, ok := c.prim.arr.DrainBucket(i, out[total:]); ok {
			c.prim.idx.Clear(i)
			total += k
			c.count -= k
			continue
		}
		for total < len(out) {
			n, empty := c.prim.arr.PopFront(i)
			if n == nil {
				break
			}
			out[total] = n
			total++
			c.count--
			if empty {
				c.prim.idx.Clear(i)
				break
			}
		}
	}
	return total
}

// PeekMin returns the start rank of the lowest non-empty bucket (quantized
// to the queue granularity). For a time-indexed shaper this is the
// SoonestDeadline() the Eiffel qdisc uses to arm its timer exactly (§4).
//
//eiffel:hotpath
func (c *CFFS) PeekMin() (rank uint64, ok bool) {
	if c.count == 0 {
		return 0, false
	}
	c.advance()
	i := c.prim.idx.Min()
	return (c.hIndex + uint64(i)) * c.gran, true
}

// Min is PeekMin under the shardq.Scheduler backend contract, letting a
// cFFS serve as a per-shard backend without an adapter.
//
//eiffel:hotpath
func (c *CFFS) Min() (uint64, bool) { return c.PeekMin() }

// FrontMin returns the FIFO head of the lowest non-empty bucket without
// removing it, or nil.
//
//eiffel:hotpath
func (c *CFFS) FrontMin() *bucket.Node {
	if c.count == 0 {
		return nil
	}
	c.advance()
	return c.prim.arr.Front(c.prim.idx.Min())
}

// Remove detaches n, which must be queued here, in O(1).
//
//eiffel:hotpath
func (c *CFFS) Remove(n *bucket.Node) {
	var h *half
	switch {
	case n.InArray(c.prim.arr):
		h = c.prim
	case n.InArray(c.sec.arr):
		h = c.sec
	default:
		panic("ffsq: Remove of a node not queued in this CFFS")
	}
	i := n.BucketIndex()
	if h.arr.Remove(n) {
		h.idx.Clear(i)
	}
	c.count--
}

// Contains reports whether n is currently queued here.
func (c *CFFS) Contains(n *bucket.Node) bool {
	return n.InArray(c.prim.arr) || n.InArray(c.sec.arr)
}

// advance rotates until the primary half is non-empty. Callers guarantee
// count > 0. Runs at most two iterations: a rotation either exposes
// in-window elements in the new primary, or the fast-forward path re-anchors
// the window at the smallest overflowed rank.
//
//eiffel:hotpath
func (c *CFFS) advance() {
	for c.prim.idx.Empty() {
		if c.sec.idx.Empty() {
			panic("ffsq: cFFS invariant violated: elements queued but both halves empty")
		}
		if c.redistribute && c.sec.idx.Min() == int(c.nb-1) {
			// Only the overflow bucket holds elements: everything is
			// far beyond the window. Jump the window directly to the
			// smallest true rank rather than rotating once per nb.
			// (Skipped without redistribution: a plain rotation then
			// surfaces the overflow bucket in FIFO order, which is the
			// paper's base behaviour.)
			c.fastForward()
			continue
		}
		c.rotate()
	}
}

//eiffel:hotpath
func (c *CFFS) rotate() {
	c.prim, c.sec = c.sec, c.prim
	c.hIndex += c.nb
	c.rotations++
	if c.redistribute {
		// The old secondary's overflow bucket is now the primary's last
		// bucket; its elements may belong anywhere at or beyond it.
		c.replaceBucket(c.prim, int(c.nb-1))
	}
}

//eiffel:hotpath
func (c *CFFS) fastForward() {
	last := int(c.nb - 1)
	c.drainInto(c.sec, last)
	minB := ^uint64(0)
	for _, n := range c.scratch {
		if b := n.Rank() / c.gran; b < minB {
			minB = b
		}
	}
	c.hIndex = minB
	c.fastForwards++
	c.flushScratch()
}

// replaceBucket drains bucket i of h and re-enqueues every element by its
// true rank against the current window.
//
//eiffel:hotpath
func (c *CFFS) replaceBucket(h *half, i int) {
	if h.arr.BucketEmpty(i) {
		return
	}
	c.drainInto(h, i)
	c.flushScratch()
}

//eiffel:hotpath
func (c *CFFS) drainInto(h *half, i int) {
	for {
		n, empty := h.arr.PopFront(i)
		if n == nil {
			break
		}
		c.scratch = append(c.scratch, n)
		if empty {
			h.idx.Clear(i)
			break
		}
	}
}

// scratchRetainCap bounds the redistribution buffer capacity kept alive
// between flushes. One huge overflow burst (or a fast-forward over a large
// backlog) grows scratch to the burst size; without a bound that peak
// capacity — plus the stale node pointers in it — would be retained for
// the queue's whole lifetime. Steady-state redistributions are far smaller
// than this, so the common path never re-allocates.
const scratchRetainCap = 1024

//eiffel:hotpath
func (c *CFFS) flushScratch() {
	for _, n := range c.scratch {
		c.place(n, n.Rank(), n.Rank()/c.gran)
	}
	if cap(c.scratch) > scratchRetainCap {
		c.scratch = nil // drop the peak-sized buffer; reallocated lazily
	} else {
		c.scratch = c.scratch[:0]
	}
}
