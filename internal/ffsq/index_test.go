package ffsq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveIndex is a reference implementation backed by a []bool.
type naiveIndex struct {
	set []bool
}

func newNaive(n int) *naiveIndex { return &naiveIndex{set: make([]bool, n)} }

func (x *naiveIndex) Set(i int)       { x.set[i] = true }
func (x *naiveIndex) Clear(i int)     { x.set[i] = false }
func (x *naiveIndex) Test(i int) bool { return x.set[i] }
func (x *naiveIndex) Size() int       { return len(x.set) }

func (x *naiveIndex) Min() int {
	for i, s := range x.set {
		if s {
			return i
		}
	}
	return -1
}

func (x *naiveIndex) Max() int {
	for i := len(x.set) - 1; i >= 0; i-- {
		if x.set[i] {
			return i
		}
	}
	return -1
}

func (x *naiveIndex) NextFrom(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(x.set); i++ {
		if x.set[i] {
			return i
		}
	}
	return -1
}

func (x *naiveIndex) Empty() bool { return x.Min() == -1 }

func testIndexAgainstNaive(t *testing.T, mk func(n int) Index, n int, seed int64) {
	t.Helper()
	idx := mk(n)
	ref := newNaive(n)
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < 2000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			idx.Set(i)
			ref.Set(i)
		case 1:
			idx.Clear(i)
			ref.Clear(i)
		case 2:
			// Redundant ops must be idempotent.
			if ref.Test(i) {
				idx.Set(i)
			} else {
				idx.Clear(i)
			}
		}
		if got, want := idx.Min(), ref.Min(); got != want {
			t.Fatalf("op %d: Min = %d, want %d", op, got, want)
		}
		if got, want := idx.Max(), ref.Max(); got != want {
			t.Fatalf("op %d: Max = %d, want %d", op, got, want)
		}
		if got, want := idx.Empty(), ref.Empty(); got != want {
			t.Fatalf("op %d: Empty = %v, want %v", op, got, want)
		}
		j := rng.Intn(n + 2)
		if got, want := idx.NextFrom(j), ref.NextFrom(min(j, n)); got != want {
			if !(j >= n && got == -1) {
				t.Fatalf("op %d: NextFrom(%d) = %d, want %d", op, j, got, want)
			}
		}
		if got, want := idx.Test(i), ref.Test(i); got != want {
			t.Fatalf("op %d: Test(%d) = %v, want %v", op, i, got, want)
		}
	}
}

func TestBitmapAgainstNaive(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65, 130, 1000} {
		testIndexAgainstNaive(t, func(n int) Index { return NewBitmap(n) }, n, int64(n))
	}
}

func TestHierAgainstNaive(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65, 130, 4096, 4097, 300000} {
		testIndexAgainstNaive(t, func(n int) Index { return NewHier(n) }, n, int64(n))
	}
}

func TestHierLevels(t *testing.T) {
	cases := []struct {
		n      int
		levels int
	}{
		{1, 1}, {64, 1}, {65, 2}, {4096, 2}, {4097, 3}, {262144, 3}, {262145, 4},
	}
	for _, c := range cases {
		h := NewHier(c.n)
		if got := len(h.levels); got != c.levels {
			t.Errorf("NewHier(%d): %d levels, want %d", c.n, got, c.levels)
		}
	}
}

func TestHierSingleBitSweep(t *testing.T) {
	const n = 70000
	h := NewHier(n)
	for _, i := range []int{0, 1, 63, 64, 65, 4095, 4096, 4097, 69999} {
		h.Set(i)
		if got := h.Min(); got != i {
			t.Fatalf("Min after Set(%d) = %d", i, got)
		}
		if got := h.Max(); got != i {
			t.Fatalf("Max after Set(%d) = %d", i, got)
		}
		if got := h.NextFrom(i); got != i {
			t.Fatalf("NextFrom(%d) = %d", i, got)
		}
		if got := h.NextFrom(i + 1); got != -1 {
			t.Fatalf("NextFrom(%d) = %d, want -1", i+1, got)
		}
		h.Clear(i)
		if !h.Empty() {
			t.Fatalf("not empty after Clear(%d)", i)
		}
	}
}

func TestQuickHierMinMatchesNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 5000
		h := NewHier(n)
		ref := newNaive(n)
		for _, v := range raw {
			i := int(v) % n
			h.Set(i)
			ref.Set(i)
		}
		return h.Min() == ref.Min() && h.Max() == ref.Max() && h.Count() == countSet(ref.set)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func countSet(s []bool) int {
	c := 0
	for _, b := range s {
		if b {
			c++
		}
	}
	return c
}

func BenchmarkHierMin(b *testing.B) {
	h := NewHier(262144)
	h.Set(261000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Min() != 261000 {
			b.Fatal("wrong min")
		}
	}
}

func BenchmarkHierSetClear(b *testing.B) {
	h := NewHier(262144)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Set(i & 262143)
		h.Clear(i & 262143)
	}
}
