package netsim

import (
	"fmt"

	"eiffel/internal/ffsq"
	"eiffel/internal/gradq"
	"eiffel/internal/pkt"
)

// QueueKind selects the switch port discipline.
type QueueKind int

// Port queue kinds.
const (
	// QueueFIFOECN is drop-tail FIFO with DCTCP threshold marking.
	QueueFIFOECN QueueKind = iota
	// QueuePFabric is the exact pFabric priority queue: dequeue smallest
	// remaining size, drop largest when full.
	QueuePFabric
	// QueuePFabricApprox replaces the exact priority index with the
	// approximate gradient queue — the Figure 19 treatment.
	QueuePFabricApprox
)

// String names the kind.
func (k QueueKind) String() string {
	switch k {
	case QueueFIFOECN:
		return "DCTCP"
	case QueuePFabric:
		return "pFabric"
	case QueuePFabricApprox:
		return "pFabric-Approx"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// portQueue is a switch output queue.
type portQueue interface {
	// Push admits p; the return is a dropped packet (possibly p itself)
	// or nil.
	Push(p *pkt.Packet) *pkt.Packet
	// Pop removes the next packet to transmit, or nil.
	Pop() *pkt.Packet
	// Len returns queued packets.
	Len() int
}

// fifoECN: drop-tail + ECN threshold marking (DCTCP's switch config).
type fifoECN struct {
	ring    []*pkt.Packet
	head, n int
	capPkts int
	markAt  int
}

func newFIFOECN(capPkts, markAt int) *fifoECN {
	return &fifoECN{ring: make([]*pkt.Packet, capPkts), capPkts: capPkts, markAt: markAt}
}

func (q *fifoECN) Push(p *pkt.Packet) *pkt.Packet {
	if q.n >= q.capPkts {
		return p
	}
	if q.n >= q.markAt {
		p.Flags |= pkt.FlagECN
	}
	q.ring[(q.head+q.n)%len(q.ring)] = p
	q.n++
	return nil
}

func (q *fifoECN) Pop() *pkt.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	return p
}

func (q *fifoECN) Len() int { return q.n }

// pfabricQ: exact priority queue keyed by remaining flow size.
type pfabricQ struct {
	q       *ffsq.Fixed
	capPkts int
}

func newPFabricQ(capPkts int) *pfabricQ {
	// Remaining sizes up to ~48 MB at 1460 B granularity.
	return &pfabricQ{q: ffsq.NewFixed(1<<15, 1460, 0), capPkts: capPkts}
}

func (q *pfabricQ) Push(p *pkt.Packet) *pkt.Packet {
	if q.q.Len() >= q.capPkts {
		// Full: drop the packet of the flow with the most remaining work
		// — unless the arrival itself is the largest.
		if maxRank, ok := q.q.PeekMax(); ok && p.Rank >= maxRank {
			return p
		}
		victim := q.q.DequeueMax()
		q.q.Enqueue(&p.SchedNode, p.Rank)
		return pkt.FromSchedNode(victim)
	}
	q.q.Enqueue(&p.SchedNode, p.Rank)
	return nil
}

func (q *pfabricQ) Pop() *pkt.Packet {
	n := q.q.DequeueMin()
	if n == nil {
		return nil
	}
	return pkt.FromSchedNode(n)
}

func (q *pfabricQ) Len() int { return q.q.Len() }

// pfabricApproxQ swaps the exact index for the approximate gradient queue.
type pfabricApproxQ struct {
	q       *gradq.Approx
	capPkts int
}

func newPFabricApproxQ(capPkts int) *pfabricApproxQ {
	return &pfabricApproxQ{
		q:       gradq.NewApprox(gradq.ApproxOptions{NumBuckets: 1 << 15, Granularity: 1460}),
		capPkts: capPkts,
	}
}

func (q *pfabricApproxQ) Push(p *pkt.Packet) *pkt.Packet {
	if q.q.Len() >= q.capPkts {
		if maxRank, ok := q.q.PeekMaxLinear(); ok && p.Rank >= maxRank {
			return p
		}
		victim := q.q.DequeueMaxLinear()
		q.q.Enqueue(&p.SchedNode, p.Rank)
		return pkt.FromSchedNode(victim)
	}
	q.q.Enqueue(&p.SchedNode, p.Rank)
	return nil
}

func (q *pfabricApproxQ) Pop() *pkt.Packet {
	n := q.q.DequeueMin()
	if n == nil {
		return nil
	}
	return pkt.FromSchedNode(n)
}

func (q *pfabricApproxQ) Len() int { return q.q.Len() }

// Port is one output port: a queue plus a transmitter that serializes
// packets at the link rate and hands them to deliver after the propagation
// delay.
type Port struct {
	sim     *Sim
	name    string
	bps     uint64
	propNs  int64
	queue   portQueue
	busy    bool
	deliver func(*pkt.Packet)

	// Sent, Dropped, SentBytes are counters for diagnostics.
	Sent      uint64
	Dropped   uint64
	SentBytes uint64

	onDrop func(*pkt.Packet)
}

func newPort(sim *Sim, name string, bps uint64, propNs int64, q portQueue) *Port {
	return &Port{sim: sim, name: name, bps: bps, propNs: propNs, queue: q}
}

// Send enqueues p for transmission.
func (pt *Port) Send(p *pkt.Packet) {
	if dropped := pt.queue.Push(p); dropped != nil {
		pt.Dropped++
		if pt.onDrop != nil {
			pt.onDrop(dropped)
		}
		if dropped == p {
			return
		}
	}
	if !pt.busy {
		pt.start()
	}
}

func (pt *Port) start() {
	p := pt.queue.Pop()
	if p == nil {
		return
	}
	pt.busy = true
	txNs := int64(uint64(p.Size) * 8 * 1e9 / pt.bps)
	if txNs < 1 {
		txNs = 1
	}
	pt.sim.After(txNs, func() {
		pt.Sent++
		pt.SentBytes += uint64(p.Size)
		pt.sim.After(pt.propNs, func() { pt.deliver(p) })
		pt.busy = false
		if pt.queue.Len() > 0 {
			pt.start()
		}
	})
}

// QueueLen returns the current queue depth in packets.
func (pt *Port) QueueLen() int { return pt.queue.Len() }
