// Package netsim is the ns2-stand-in used for the network-wide evaluation
// of Figure 19: a packet-level discrete-event simulator with a leaf-spine
// datacenter topology, per-port output queues with pluggable disciplines
// (drop-tail FIFO with DCTCP ECN marking; pFabric priority queues in exact
// and approximate variants), and two transports (DCTCP and pFabric's
// minimal transport). The switch priority queue is the component under
// test: Figure 19 asks whether replacing the exact priority queue with the
// approximate gradient queue changes network-wide flow completion times.
package netsim

// Sim is a discrete-event engine. Events at equal times run in schedule
// order (FIFO), which keeps runs deterministic.
type Sim struct {
	now  int64
	heap []simEvent
	seq  uint64
}

type simEvent struct {
	t   int64
	seq uint64
	fn  func()
}

// NewSim returns an empty simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in ns.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn at absolute time t (>= now).
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap = append(s.heap, simEvent{t: t, seq: s.seq, fn: fn})
	s.up(len(s.heap) - 1)
}

// After schedules fn d ns from now.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.heap) }

// Step runs the earliest event; false if none remain.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.down(0)
	}
	s.now = ev.t
	ev.fn()
	return true
}

// RunUntil processes events up to and including time t.
func (s *Sim) RunUntil(t int64) {
	for len(s.heap) > 0 && s.heap[0].t <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntilIdle drains every event.
func (s *Sim) RunUntilIdle() {
	for s.Step() {
	}
}

func (s *Sim) less(i, j int) bool {
	if s.heap[i].t != s.heap[j].t {
		return s.heap[i].t < s.heap[j].t
	}
	return s.heap[i].seq < s.heap[j].seq
}

func (s *Sim) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *Sim) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}
