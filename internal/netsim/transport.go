package netsim

import (
	"eiffel/internal/pkt"
)

// Transport selects the end-host protocol.
type Transport int

// Transports.
const (
	// TransportPFabric is pFabric's minimal transport: start at line
	// rate, priority = remaining flow size, per-packet selective acks,
	// small fixed RTO; the fabric's priority queues do the scheduling.
	TransportPFabric Transport = iota
	// TransportDCTCP is DCTCP: window-based with ECN-fraction-
	// proportional backoff.
	TransportDCTCP
)

// flowState is one sender/receiver pair.
type flowState struct {
	id       uint64
	src, dst int
	sizePkts uint32
	started  int64

	// Sender.
	next     uint32 // next new sequence to send
	inflight int
	cwnd     float64
	acked    []bool
	ackedCnt uint32
	rtoGen   uint64 // invalidates stale timeout events
	lastProg int64

	// DCTCP state.
	alpha      float64
	ackedInWin uint32
	markedIn   uint32
	ssthresh   float64

	// Receiver.
	rcvd    []bool
	rcvdCnt uint32
	done    bool
}

// Endhosts couples the transports to a Network and records FCTs.
type Endhosts struct {
	sim   *Sim
	net   *Network
	pool  *pkt.Pool
	kind  Transport
	flows map[uint64]*flowState
	mtu   uint32
	rtoNs int64
	bdp   float64 // packets

	// Completed holds (sizeBytes, fctNs) per finished flow.
	Completed []FlowRecord
	// Retransmits counts timeout resends.
	Retransmits uint64
}

// FlowRecord is one finished flow.
type FlowRecord struct {
	// Bytes is the flow size.
	Bytes uint64
	// FCTNs is the measured completion time.
	FCTNs int64
	// IdealNs is the uncontended lower bound.
	IdealNs int64
}

// Slowdown returns FCT normalized to ideal (>= ~1).
func (r FlowRecord) Slowdown() float64 { return float64(r.FCTNs) / float64(r.IdealNs) }

// NewEndhosts wires transports into net.
func NewEndhosts(sim *Sim, net *Network, pool *pkt.Pool, kind Transport) *Endhosts {
	e := &Endhosts{
		sim:   sim,
		net:   net,
		pool:  pool,
		kind:  kind,
		flows: make(map[uint64]*flowState),
		mtu:   net.cfg.MTU,
	}
	baseRTT := net.BaseRTTNs()
	e.rtoNs = 3 * baseRTT
	if e.rtoNs < 40_000 {
		e.rtoNs = 40_000 // pFabric's small fixed RTO regime (~45 us)
	}
	e.bdp = float64(net.cfg.EdgeBps) / 8 * float64(baseRTT) / 1e9 / float64(e.mtu)
	if e.bdp < 2 {
		e.bdp = 2
	}
	net.recv = e.receive
	return e
}

// StartFlow begins a transfer of sizeBytes from src to dst.
func (e *Endhosts) StartFlow(id uint64, src, dst int, sizeBytes uint64) {
	pkts := uint32((sizeBytes + uint64(e.mtu) - 1) / uint64(e.mtu))
	if pkts == 0 {
		pkts = 1
	}
	f := &flowState{
		id:       id,
		src:      src,
		dst:      dst,
		sizePkts: pkts,
		started:  e.sim.Now(),
		acked:    make([]bool, pkts),
		rcvd:     make([]bool, pkts),
		lastProg: e.sim.Now(),
	}
	switch e.kind {
	case TransportDCTCP:
		f.cwnd = 10
		f.ssthresh = 1e18
	default:
		f.cwnd = e.bdp // line-rate start
	}
	e.flows[id] = f
	e.trySend(f)
	e.armRTO(f)
}

// remaining returns the flow's outstanding bytes — the pFabric rank.
func (e *Endhosts) remaining(f *flowState) uint64 {
	return uint64(f.sizePkts-f.ackedCnt) * uint64(e.mtu)
}

func (e *Endhosts) trySend(f *flowState) {
	for f.inflight < int(f.cwnd) && f.next < f.sizePkts {
		e.sendSeq(f, f.next)
		f.next++
	}
}

func (e *Endhosts) sendSeq(f *flowState, seq uint32) {
	p := e.pool.Get()
	p.Flow = f.id
	p.Size = e.mtu
	p.Seq = seq
	p.Rank = e.remaining(f)
	f.inflight++
	e.net.SendData(f.src, f.dst, p)
}

func (e *Endhosts) armRTO(f *flowState) {
	gen := f.rtoGen
	e.sim.After(e.rtoNs, func() { e.onRTO(f, gen) })
}

func (e *Endhosts) onRTO(f *flowState, gen uint64) {
	if f.done || gen != f.rtoGen {
		return
	}
	if e.sim.Now()-f.lastProg >= e.rtoNs {
		// No progress for an RTO: everything outstanding is presumed
		// lost (drops never decrement inflight, so it must be reset or
		// the window jams permanently). Resend the lowest hole; higher
		// holes re-emerge as it advances.
		lo := uint32(0)
		for lo < f.sizePkts && f.acked[lo] {
			lo++
		}
		if lo < f.sizePkts {
			e.Retransmits++
			f.inflight = 0
			if e.kind == TransportDCTCP {
				f.ssthresh = f.cwnd / 2
				if f.ssthresh < 2 {
					f.ssthresh = 2
				}
				f.cwnd = 2
			}
			// Go-back over every hole already sent once, up to a window.
			for s := lo; s < f.next && f.inflight < int(f.cwnd); s++ {
				if !f.acked[s] {
					e.sendSeq(f, s)
				}
			}
			e.trySend(f)
		}
	}
	f.rtoGen++
	e.armRTO(f)
}

// receive handles both data (at the receiver) and acks (at the sender).
func (e *Endhosts) receive(host int, p *pkt.Packet) {
	f := e.flows[p.Flow]
	if f == nil || f.done {
		e.pool.Put(p)
		return
	}
	if p.Flags&pkt.FlagACK != 0 {
		e.onAck(f, p)
		return
	}
	// Receiver side: record, ack.
	seq := p.Seq
	echo := p.Flags&pkt.FlagECN != 0
	if !f.rcvd[seq] {
		f.rcvd[seq] = true
		f.rcvdCnt++
	}
	e.pool.Put(p)
	ack := e.pool.Get()
	ack.Flow = f.id
	ack.Size = 40
	ack.Seq = seq
	ack.Flags = pkt.FlagACK
	if echo {
		ack.Flags |= pkt.FlagECNEcho
	}
	e.net.SendAck(f.dst, f.src, ack)
}

func (e *Endhosts) onAck(f *flowState, p *pkt.Packet) {
	seq := p.Seq
	marked := p.Flags&pkt.FlagECNEcho != 0
	e.pool.Put(p)
	if f.acked[seq] {
		return // duplicate (retransmission completed twice)
	}
	f.acked[seq] = true
	f.ackedCnt++
	f.lastProg = e.sim.Now()
	if f.inflight > 0 {
		f.inflight--
	}
	if e.kind == TransportDCTCP {
		e.dctcpOnAck(f, marked)
	}
	if f.ackedCnt >= f.sizePkts {
		f.done = true
		size := uint64(f.sizePkts) * uint64(e.mtu)
		e.Completed = append(e.Completed, FlowRecord{
			Bytes:   size,
			FCTNs:   e.sim.Now() - f.started,
			IdealNs: e.net.IdealFCTNs(size),
		})
		delete(e.flows, f.id)
		return
	}
	e.trySend(f)
}

// dctcpOnAck implements DCTCP window evolution: standard slow start /
// congestion avoidance plus once-per-window alpha update and
// alpha-proportional backoff.
func (e *Endhosts) dctcpOnAck(f *flowState, marked bool) {
	f.ackedInWin++
	if marked {
		f.markedIn++
		if f.cwnd < f.ssthresh {
			// First congestion signal ends slow start (standard ECN
			// semantics); without this the window outruns every buffer.
			f.ssthresh = f.cwnd
		}
	}
	if f.cwnd < f.ssthresh {
		f.cwnd++
	} else {
		f.cwnd += 1 / f.cwnd
	}
	if f.ackedInWin >= uint32(f.cwnd) {
		// Window boundary: fold the mark fraction into alpha.
		const g = 1.0 / 16
		frac := float64(f.markedIn) / float64(f.ackedInWin)
		f.alpha = (1-g)*f.alpha + g*frac
		if f.markedIn > 0 {
			f.cwnd = f.cwnd * (1 - f.alpha/2)
			if f.cwnd < 2 {
				f.cwnd = 2
			}
			f.ssthresh = f.cwnd
		}
		f.ackedInWin, f.markedIn = 0, 0
	}
}

// Active returns the number of unfinished flows.
func (e *Endhosts) Active() int { return len(e.flows) }
