package netsim

import (
	"testing"

	"eiffel/internal/pkt"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 11) }) // same time: FIFO
	s.RunUntilIdle()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10, tick)
		}
	}
	s.After(10, tick)
	s.RunUntil(100)
	if count != 5 || s.Now() != 100 {
		t.Fatalf("count=%d now=%d", count, s.Now())
	}
}

func singleFlowFCT(t *testing.T, tr Transport, q QueueKind, bytes uint64) float64 {
	t.Helper()
	sim := NewSim()
	pool := pkt.NewPool(4096)
	net := NewNetwork(sim, pool, NetConfig{Hosts: 32, HostsPerLeaf: 16, Spines: 2, Queue: q})
	hosts := NewEndhosts(sim, net, pool, tr)
	hosts.StartFlow(1, 0, 17, bytes) // cross-leaf
	for sim.Pending() > 0 && hosts.Active() > 0 {
		sim.Step()
	}
	if len(hosts.Completed) != 1 {
		t.Fatalf("flow did not complete (%d records, %d drops)", len(hosts.Completed), net.Drops())
	}
	return hosts.Completed[0].Slowdown()
}

func TestUncontendedFlowNearIdeal(t *testing.T) {
	// Only the paper's pairings: DCTCP runs over ECN-marking FIFOs,
	// pFabric over priority queues (exact or approximate).
	cases := []struct {
		tr    Transport
		q     QueueKind
		limit float64
	}{
		{TransportPFabric, QueuePFabric, 1.6},
		{TransportPFabric, QueuePFabricApprox, 1.6},
		{TransportDCTCP, QueueFIFOECN, 3.5}, // slow start costs a few RTTs
	}
	for _, c := range cases {
		s := singleFlowFCT(t, c.tr, c.q, 1_000_000)
		if s > c.limit {
			t.Errorf("transport=%v queue=%v slowdown=%.2f", c.tr, c.q, s)
		}
	}
}

func TestShortFlowUncontended(t *testing.T) {
	s := singleFlowFCT(t, TransportPFabric, QueuePFabric, 5000)
	if s > 1.5 {
		t.Fatalf("short flow slowdown %.2f", s)
	}
}

func TestLinkCapacityRespected(t *testing.T) {
	// Two senders blast one receiver: goodput can't exceed the edge link.
	sim := NewSim()
	pool := pkt.NewPool(8192)
	net := NewNetwork(sim, pool, NetConfig{Hosts: 32, HostsPerLeaf: 16, Spines: 2, Queue: QueuePFabric})
	hosts := NewEndhosts(sim, net, pool, TransportPFabric)
	const size = 3_000_000
	hosts.StartFlow(1, 0, 20, size)
	hosts.StartFlow(2, 1, 20, size)
	for sim.Pending() > 0 && hosts.Active() > 0 && sim.Now() < 60e9 {
		sim.Step()
	}
	if len(hosts.Completed) != 2 {
		t.Fatalf("completed %d of 2", len(hosts.Completed))
	}
	elapsed := float64(sim.Now())
	gbps := float64(2*size*8) / elapsed
	if gbps > 10.5 {
		t.Fatalf("goodput %.2f Gbps exceeds the 10G edge", gbps)
	}
}

func TestPFabricShortFlowPreemptsLong(t *testing.T) {
	// A long flow saturates the path; a short flow arrives mid-way. With
	// pFabric priority queues the short flow must finish near-ideal.
	for _, q := range []QueueKind{QueuePFabric, QueuePFabricApprox} {
		sim := NewSim()
		pool := pkt.NewPool(8192)
		net := NewNetwork(sim, pool, NetConfig{Hosts: 32, HostsPerLeaf: 16, Spines: 2, Queue: q})
		hosts := NewEndhosts(sim, net, pool, TransportPFabric)
		hosts.StartFlow(1, 0, 20, 20_000_000)
		sim.RunUntil(2_000_000) // long flow underway
		hosts.StartFlow(2, 1, 20, 20_000)
		for sim.Pending() > 0 && hosts.Active() > 0 && sim.Now() < 120e9 {
			sim.Step()
		}
		var short *FlowRecord
		for i := range hosts.Completed {
			if hosts.Completed[i].Bytes < 1_000_000 {
				short = &hosts.Completed[i]
			}
		}
		if short == nil {
			t.Fatalf("%v: short flow missing", q)
		}
		if s := short.Slowdown(); s > 4 {
			t.Fatalf("%v: short flow slowdown %.2f under a long flow", q, s)
		}
	}
}

func TestDCTCPKeepsQueuesShort(t *testing.T) {
	// DCTCP's whole point: persistent flows should stabilize around the
	// marking threshold rather than fill the buffer.
	sim := NewSim()
	pool := pkt.NewPool(16384)
	net := NewNetwork(sim, pool, NetConfig{Hosts: 32, HostsPerLeaf: 16, Spines: 2, Queue: QueueFIFOECN})
	hosts := NewEndhosts(sim, net, pool, TransportDCTCP)
	hosts.StartFlow(1, 0, 20, 50_000_000)
	hosts.StartFlow(2, 1, 20, 50_000_000)
	maxQ := 0
	for sim.Pending() > 0 && hosts.Active() > 0 && sim.Now() < 120e9 {
		sim.Step()
		if q := net.leafDown[1][4].QueueLen(); q > maxQ {
			maxQ = q
		}
	}
	if maxQ == 0 {
		t.Fatal("no queue ever built at the bottleneck")
	}
	if maxQ >= 256 {
		t.Fatalf("DCTCP filled the buffer (max queue %d)", maxQ)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, c := range []struct {
		tr Transport
		q  QueueKind
	}{
		{TransportDCTCP, QueueFIFOECN},
		{TransportPFabric, QueuePFabric},
		{TransportPFabric, QueuePFabricApprox},
	} {
		res := RunExperiment(ExperimentConfig{
			Hosts:        32,
			HostsPerLeaf: 16,
			Spines:       2,
			Load:         0.4,
			Transport:    c.tr,
			Queue:        c.q,
			Flows:        300,
			Seed:         7,
		})
		if res.Completed < 290 {
			t.Fatalf("%s: completed %d of 300 (drops=%d)", res.Label, res.Completed, res.Drops)
		}
		if res.AvgSmall < 0.99 {
			t.Fatalf("%s: impossible slowdown %v", res.Label, res.AvgSmall)
		}
	}
}

func TestApproxTracksExactNetworkWide(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The Figure 19 claim in miniature: swapping the exact priority queue
	// for the approximate one must not change FCTs materially.
	base := ExperimentConfig{
		Hosts: 32, HostsPerLeaf: 16, Spines: 2,
		Load: 0.5, Transport: TransportPFabric, Flows: 400, Seed: 11,
	}
	exact := base
	exact.Queue = QueuePFabric
	approx := base
	approx.Queue = QueuePFabricApprox
	re := RunExperiment(exact)
	ra := RunExperiment(approx)
	if re.Completed == 0 || ra.Completed == 0 {
		t.Fatal("experiments did not complete")
	}
	ratio := ra.AvgSmall / re.AvgSmall
	if ratio > 1.5 || ratio < 0.6 {
		t.Fatalf("approximate queue diverged: exact=%.2f approx=%.2f", re.AvgSmall, ra.AvgSmall)
	}
}
