package netsim

import (
	"math/rand"

	"eiffel/internal/pkt"
	"eiffel/internal/stats"
	"eiffel/internal/workload"
)

// ExperimentConfig parameterizes one Figure 19 run: a transport + queue
// pair at one load point.
type ExperimentConfig struct {
	// Hosts is the fabric size (paper: 144; tests scale down).
	Hosts int
	// HostsPerLeaf and Spines shape the topology (defaults 16 and 4).
	HostsPerLeaf int
	Spines       int
	// Load is the offered fraction of edge capacity (0.1 .. 0.8).
	Load float64
	// Transport picks DCTCP or pFabric.
	Transport Transport
	// Queue picks the switch discipline.
	Queue QueueKind
	// Flows is how many flows to inject (paper runs tens of thousands;
	// quick mode uses fewer).
	Flows int
	// Seed drives the workload.
	Seed int64
	// MaxSimSeconds caps simulated time as a straggler guard.
	MaxSimSeconds int
}

// ExperimentResult aggregates normalized FCTs in the paper's three panels.
type ExperimentResult struct {
	// Label names the (transport, queue) pair.
	Label string
	// Load echoes the configured load.
	Load float64
	// AvgSmall is the mean normalized FCT for (0, 100 KB] flows.
	AvgSmall float64
	// P99Small is the 99th percentile for (0, 100 KB] flows.
	P99Small float64
	// AvgLarge is the mean normalized FCT for (10 MB, inf) flows.
	AvgLarge float64
	// AvgAll is the mean over all flows.
	AvgAll float64
	// Completed counts finished flows; Drops and Retransmits are
	// fabric-wide totals.
	Completed   int
	Drops       uint64
	Retransmits uint64
}

// RunExperiment injects Poisson flow arrivals (web-search sizes) at the
// configured load and runs until every flow completes (or the time cap).
func RunExperiment(cfg ExperimentConfig) ExperimentResult {
	if cfg.Hosts == 0 {
		cfg.Hosts = 144
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 16
	}
	if cfg.Flows == 0 {
		cfg.Flows = 2000
	}
	if cfg.MaxSimSeconds == 0 {
		cfg.MaxSimSeconds = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	sim := NewSim()
	pool := pkt.NewPool(1 << 14)
	net := NewNetwork(sim, pool, NetConfig{
		Hosts:        cfg.Hosts,
		HostsPerLeaf: cfg.HostsPerLeaf,
		Spines:       cfg.Spines,
		Queue:        cfg.Queue,
	})
	hosts := NewEndhosts(sim, net, pool, cfg.Transport)

	dist := workload.NewSizeDist(workload.WebSearchCDF)
	// Offered load is per-edge-link: each host's egress runs at
	// Load * EdgeBps on average, so the fabric-wide flow arrival rate is
	// Load * EdgeBps * Hosts / (8 * meanBytes).
	arr := workload.NewPoissonArrivals(rng, cfg.Load, net.cfg.EdgeBps*uint64(cfg.Hosts), dist.Mean())

	var nextFlow uint64
	var schedule func()
	schedule = func() {
		if int(nextFlow) >= cfg.Flows {
			return
		}
		nextFlow++
		id := nextFlow
		src, dst := randHostPair(rng, cfg.Hosts)
		size := dist.Sample(rng)
		hosts.StartFlow(id, src, dst, size)
		sim.After(arr.NextGap(), schedule)
	}
	sim.After(arr.NextGap(), schedule)

	cap := int64(cfg.MaxSimSeconds) * 1e9
	for sim.Pending() > 0 && sim.Now() < cap {
		if int(nextFlow) >= cfg.Flows && hosts.Active() == 0 {
			break
		}
		sim.Step()
	}

	res := ExperimentResult{
		Label:       cfg.Transport.String() + "/" + cfg.Queue.String(),
		Load:        cfg.Load,
		Completed:   len(hosts.Completed),
		Drops:       net.Drops(),
		Retransmits: hosts.Retransmits,
	}
	var small, large, all []float64
	for _, r := range hosts.Completed {
		s := r.Slowdown()
		all = append(all, s)
		if r.Bytes <= 100_000 {
			small = append(small, s)
		}
		if r.Bytes > 10_000_000 {
			large = append(large, s)
		}
	}
	res.AvgSmall = stats.Mean(small)
	res.P99Small = stats.Percentile(small, 99)
	res.AvgLarge = stats.Mean(large)
	res.AvgAll = stats.Mean(all)
	return res
}

// String names the transport.
func (t Transport) String() string {
	if t == TransportDCTCP {
		return "DCTCP"
	}
	return "pFabric"
}
