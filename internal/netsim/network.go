package netsim

import (
	"math/rand"

	"eiffel/internal/pkt"
)

// NetConfig describes a leaf-spine fabric and its switch queues.
type NetConfig struct {
	// Hosts is the total host count (must divide evenly across leaves).
	Hosts int
	// HostsPerLeaf sets the leaf radix (default 16).
	HostsPerLeaf int
	// Spines is the spine count (default 4).
	Spines int
	// EdgeBps is the host<->leaf link rate (default 10 Gb/s).
	EdgeBps uint64
	// CoreBps is the leaf<->spine link rate (default 40 Gb/s).
	CoreBps uint64
	// PropNs is the per-link propagation delay (default 200 ns).
	PropNs int64
	// Queue picks the port discipline.
	Queue QueueKind
	// QueueCapPkts is the per-port buffer (default 128 packets; pFabric
	// uses shallow buffers by design — 64).
	QueueCapPkts int
	// ECNThresholdPkts is DCTCP's marking threshold K (default 65 at
	// 10G, per the DCTCP paper's guideline).
	ECNThresholdPkts int
	// MTU is the segment payload size (default 1460).
	MTU uint32
}

func (c *NetConfig) defaults() {
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 16
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.EdgeBps == 0 {
		c.EdgeBps = 10e9
	}
	if c.CoreBps == 0 {
		c.CoreBps = 40e9
	}
	if c.PropNs == 0 {
		c.PropNs = 200
	}
	if c.QueueCapPkts == 0 {
		if c.Queue == QueueFIFOECN {
			c.QueueCapPkts = 256
		} else {
			c.QueueCapPkts = 64
		}
	}
	if c.ECNThresholdPkts == 0 {
		c.ECNThresholdPkts = 65
	}
	if c.MTU == 0 {
		c.MTU = 1460
	}
}

// Network is a leaf-spine fabric: per-host NIC ports, leaf up/down ports,
// and spine down ports, all contending independently.
type Network struct {
	cfg  NetConfig
	sim  *Sim
	pool *pkt.Pool

	nic       []*Port   // host egress
	leafUp    [][]*Port // [leaf][spine]
	leafDown  [][]*Port // [leaf][hostWithinLeaf]
	spineDown [][]*Port // [spine][leaf]

	recv  func(host int, p *pkt.Packet) // delivery to host transport
	drops uint64
}

// NewNetwork builds the fabric.
func NewNetwork(sim *Sim, pool *pkt.Pool, cfg NetConfig) *Network {
	cfg.defaults()
	if cfg.Hosts == 0 || cfg.Hosts%cfg.HostsPerLeaf != 0 {
		panic("netsim: Hosts must be a positive multiple of HostsPerLeaf")
	}
	leaves := cfg.Hosts / cfg.HostsPerLeaf
	n := &Network{cfg: cfg, sim: sim, pool: pool}

	mkQueue := func() portQueue {
		switch cfg.Queue {
		case QueuePFabric:
			return newPFabricQ(cfg.QueueCapPkts)
		case QueuePFabricApprox:
			return newPFabricApproxQ(cfg.QueueCapPkts)
		default:
			return newFIFOECN(cfg.QueueCapPkts, cfg.ECNThresholdPkts)
		}
	}
	drop := func(p *pkt.Packet) {
		n.drops++
		pool.Put(p)
	}

	n.nic = make([]*Port, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		h := h
		p := newPort(sim, "nic", cfg.EdgeBps, cfg.PropNs, mkQueue())
		p.onDrop = drop
		p.deliver = func(pk *pkt.Packet) { n.atLeafFromHost(h/cfg.HostsPerLeaf, pk) }
		n.nic[h] = p
	}
	n.leafUp = make([][]*Port, leaves)
	n.leafDown = make([][]*Port, leaves)
	for l := 0; l < leaves; l++ {
		n.leafUp[l] = make([]*Port, cfg.Spines)
		for s := 0; s < cfg.Spines; s++ {
			s := s
			p := newPort(sim, "leafup", cfg.CoreBps, cfg.PropNs, mkQueue())
			p.onDrop = drop
			p.deliver = func(pk *pkt.Packet) { n.atSpine(s, pk) }
			n.leafUp[l][s] = p
		}
		n.leafDown[l] = make([]*Port, cfg.HostsPerLeaf)
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			host := l*cfg.HostsPerLeaf + i
			p := newPort(sim, "leafdown", cfg.EdgeBps, cfg.PropNs, mkQueue())
			p.onDrop = drop
			p.deliver = func(pk *pkt.Packet) { n.recv(host, pk) }
			n.leafDown[l][i] = p
		}
	}
	n.spineDown = make([][]*Port, cfg.Spines)
	for s := 0; s < cfg.Spines; s++ {
		n.spineDown[s] = make([]*Port, leaves)
		for l := 0; l < leaves; l++ {
			l := l
			p := newPort(sim, "spinedown", cfg.CoreBps, cfg.PropNs, mkQueue())
			p.onDrop = drop
			p.deliver = func(pk *pkt.Packet) { n.atLeafFromSpine(l, pk) }
			n.spineDown[s][l] = p
		}
	}
	return n
}

// Drops returns total packets dropped fabric-wide.
func (n *Network) Drops() uint64 { return n.drops }

// dstHost is encoded in Packet.Deadline's low bits? No — keep it honest:
// the destination rides in Packet.Class (int32 host id), set by SendData.

// SendData injects a data packet from src toward dst.
func (n *Network) SendData(src, dst int, p *pkt.Packet) {
	p.Class = int32(dst)
	n.nic[src].Send(p)
}

// SendAck bypasses queues: acks are tiny, prioritized end-to-end in both
// DCTCP (priority queues for control) and pFabric (acks sent at highest
// priority); modeling them as delay-only keeps the contended data path as
// the only variable, a standard simplification.
func (n *Network) SendAck(src, dst int, p *pkt.Packet) {
	p.Class = int32(dst)
	n.sim.After(n.baseOneWayNs(int(p.Size)), func() { n.recv(dst, p) })
}

func (n *Network) atLeafFromHost(leaf int, p *pkt.Packet) {
	dst := int(p.Class)
	dstLeaf := dst / n.cfg.HostsPerLeaf
	if dstLeaf == leaf {
		n.leafDown[leaf][dst%n.cfg.HostsPerLeaf].Send(p)
		return
	}
	spine := int(p.Flow) % n.cfg.Spines // per-flow ECMP
	n.leafUp[leaf][spine].Send(p)
}

func (n *Network) atSpine(spine int, p *pkt.Packet) {
	dstLeaf := int(p.Class) / n.cfg.HostsPerLeaf
	n.spineDown[spine][dstLeaf].Send(p)
}

func (n *Network) atLeafFromSpine(leaf int, p *pkt.Packet) {
	dst := int(p.Class)
	n.leafDown[leaf][dst%n.cfg.HostsPerLeaf].Send(p)
}

// baseOneWayNs returns the uncontended one-way latency for a size-byte
// packet crossing the fabric (4 hops worst case).
func (n *Network) baseOneWayNs(size int) int64 {
	tx := int64(uint64(size) * 8 * 1e9 / n.cfg.EdgeBps)
	core := int64(uint64(size) * 8 * 1e9 / n.cfg.CoreBps)
	return 4*n.cfg.PropNs + 2*tx + 2*core
}

// BaseRTTNs returns the uncontended round-trip for an MTU packet plus a
// 40-byte ack.
func (n *Network) BaseRTTNs() int64 {
	return n.baseOneWayNs(int(n.cfg.MTU)) + n.baseOneWayNs(40)
}

// IdealFCTNs is the lower-bound completion time for a flow of sizeBytes:
// slowest-link serialization plus one base RTT.
func (n *Network) IdealFCTNs(sizeBytes uint64) int64 {
	return int64(sizeBytes*8*1e9/n.cfg.EdgeBps) + n.BaseRTTNs()
}

// randHostPair picks distinct src and dst uniformly.
func randHostPair(rng *rand.Rand, hosts int) (int, int) {
	src := rng.Intn(hosts)
	dst := rng.Intn(hosts - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}
