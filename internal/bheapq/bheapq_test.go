package bheapq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eiffel/internal/bucket"
)

func node() *bucket.Node { return &bucket.Node{} }

func TestOrdering(t *testing.T) {
	q := New(100, 1, 0)
	ranks := []uint64{42, 7, 99, 7, 0, 55}
	for _, r := range ranks {
		q.Enqueue(node(), r)
	}
	sorted := append([]uint64{}, ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		n := q.DequeueMin()
		if n == nil || n.Rank() != want {
			t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
		}
	}
	if q.DequeueMin() != nil {
		t.Fatal("should be empty")
	}
}

func TestLazyRemoval(t *testing.T) {
	q := New(10, 1, 0)
	n1, n2 := node(), node()
	q.Enqueue(n1, 3)
	q.Enqueue(n2, 5)
	q.Remove(n1) // bucket 3 now empty but still in heap
	if r, ok := q.PeekMin(); !ok || r != 5 {
		t.Fatalf("PeekMin = (%d,%v), want (5,true)", r, ok)
	}
	if got := q.DequeueMin(); got != n2 {
		t.Fatal("stale heap entry must be skipped")
	}
}

func TestNoDuplicateHeapEntries(t *testing.T) {
	q := New(4, 1, 0)
	for i := 0; i < 100; i++ {
		q.Enqueue(node(), 2)
	}
	if len(q.heap) != 1 {
		t.Fatalf("heap has %d entries for one bucket, want 1", len(q.heap))
	}
	for i := 0; i < 100; i++ {
		if q.DequeueMin() == nil {
			t.Fatal("lost element")
		}
	}
}

func TestClamping(t *testing.T) {
	q := New(10, 10, 100)
	q.Enqueue(node(), 5)    // below: bucket 0
	q.Enqueue(node(), 5000) // above: bucket 9
	if n := q.DequeueMin(); n.Rank() != 5 {
		t.Fatalf("want clamped-low first, got %d", n.Rank())
	}
	if n := q.DequeueMin(); n.Rank() != 5000 {
		t.Fatalf("want clamped-high second, got %d", n.Rank())
	}
}

func TestQuickAgainstSortModel(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(2048, 1, 0)
		var model []uint64
		for _, v := range raw {
			r := uint64(v % 2048)
			q.Enqueue(node(), r)
			model = append(model, r)
		}
		// Interleave removals via dequeues.
		for len(model) > 0 {
			if rng.Intn(4) == 0 {
				r := uint64(rng.Intn(2048))
				q.Enqueue(node(), r)
				model = append(model, r)
			}
			sort.Slice(model, func(i, j int) bool { return model[i] < model[j] })
			n := q.DequeueMin()
			if n == nil || n.Rank() != model[0] {
				return false
			}
			model = model[1:]
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBHEnqueueDequeue(b *testing.B) {
	q := New(16384, 1, 0)
	nodes := make([]*bucket.Node, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range nodes {
		nodes[i] = &bucket.Node{}
		q.Enqueue(nodes[i], uint64(rng.Intn(16384)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := q.DequeueMin()
		q.Enqueue(n, uint64(rng.Intn(16384)))
	}
}
