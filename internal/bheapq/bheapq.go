// Package bheapq implements the paper's microbenchmark baseline "BH": a
// bucketed integer priority queue whose non-empty bucket indices are tracked
// in a binary min-heap instead of a bitmap hierarchy (§5.2, "we develop a
// baseline for bucketed priority queues by keeping track of non-empty
// buckets in a binary heap"). Enqueue and dequeue therefore cost
// O(log buckets) heap maintenance, which is what the FFS and gradient queues
// beat.
package bheapq

import "eiffel/internal/bucket"

// Queue is a bucketed priority queue with a binary-heap occupancy index.
type Queue struct {
	arr    *bucket.Array
	heap   []int32
	inHeap []bool
	base   uint64
	gran   uint64
	nb     uint64
}

// New returns a BH queue over the fixed rank range [base, base+n*gran).
// Out-of-range ranks clamp to the first/last bucket like ffsq.Fixed.
func New(numBuckets int, gran, base uint64) *Queue {
	if numBuckets <= 0 {
		panic("bheapq: New needs a positive bucket count")
	}
	if gran == 0 {
		panic("bheapq: New needs a positive granularity")
	}
	return &Queue{
		arr:    bucket.NewArray(numBuckets),
		heap:   make([]int32, 0, 64),
		inHeap: make([]bool, numBuckets),
		base:   base,
		gran:   gran,
		nb:     uint64(numBuckets),
	}
}

// Len returns the number of queued elements.
func (q *Queue) Len() int { return q.arr.Len() }

// NumBuckets returns the configured bucket count.
func (q *Queue) NumBuckets() int { return int(q.nb) }

func (q *Queue) bucketFor(rank uint64) int {
	if rank < q.base {
		return 0
	}
	b := (rank - q.base) / q.gran
	if b >= q.nb {
		return int(q.nb - 1)
	}
	return int(b)
}

// Enqueue inserts n with the given rank.
func (q *Queue) Enqueue(n *bucket.Node, rank uint64) {
	i := q.bucketFor(rank)
	q.arr.Push(i, n, rank)
	if !q.inHeap[i] {
		q.inHeap[i] = true
		q.push(int32(i))
	}
}

// DequeueMin removes and returns the FIFO head of the lowest non-empty
// bucket, or nil. Buckets emptied by Remove are discarded lazily here.
func (q *Queue) DequeueMin() *bucket.Node {
	i := q.minBucket()
	if i < 0 {
		return nil
	}
	n, empty := q.arr.PopFront(i)
	if empty {
		q.pop()
		q.inHeap[i] = false
	}
	return n
}

// PeekMin returns the start rank of the lowest non-empty bucket.
func (q *Queue) PeekMin() (rank uint64, ok bool) {
	i := q.minBucket()
	if i < 0 {
		return 0, false
	}
	return q.base + uint64(i)*q.gran, true
}

// Remove detaches n in O(1); its bucket's heap entry is removed lazily.
func (q *Queue) Remove(n *bucket.Node) {
	q.arr.Remove(n)
}

// minBucket returns the lowest non-empty bucket, discarding stale heap
// entries, or -1.
func (q *Queue) minBucket() int {
	for len(q.heap) > 0 {
		i := int(q.heap[0])
		if !q.arr.BucketEmpty(i) {
			return i
		}
		q.pop()
		q.inHeap[i] = false
	}
	return -1
}

func (q *Queue) push(v int32) {
	q.heap = append(q.heap, v)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.heap[p] <= q.heap[i] {
			break
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
}

func (q *Queue) pop() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && q.heap[l] < q.heap[s] {
			s = l
		}
		if r < last && q.heap[r] < q.heap[s] {
			s = r
		}
		if s == i {
			return
		}
		q.heap[i], q.heap[s] = q.heap[s], q.heap[i]
		i = s
	}
}
