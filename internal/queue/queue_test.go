package queue

import (
	"math/rand"
	"sort"
	"testing"

	"eiffel/internal/bucket"
)

var allKinds = []Kind{
	KindCFFS, KindFFS, KindFFSFlat, KindApprox, KindCApprox,
	KindBH, KindBinaryHeap, KindPairingHeap, KindRBTree,
}

// exactKinds dequeue the true minimum; approximate kinds may not.
var exactKinds = []Kind{
	KindCFFS, KindFFS, KindFFSFlat, KindBH, KindBinaryHeap, KindPairingHeap, KindRBTree,
}

func TestAllKindsDrainEverything(t *testing.T) {
	for _, k := range allKinds {
		t.Run(k.String(), func(t *testing.T) {
			q := New(k, Config{NumBuckets: 1024, Granularity: 1})
			rng := rand.New(rand.NewSource(5))
			const total = 2000
			for i := 0; i < total; i++ {
				q.Enqueue(&bucket.Node{}, uint64(rng.Intn(1024)))
			}
			if q.Len() != total {
				t.Fatalf("Len = %d, want %d", q.Len(), total)
			}
			got := 0
			for q.DequeueMin() != nil {
				got++
			}
			if got != total {
				t.Fatalf("drained %d, want %d", got, total)
			}
		})
	}
}

func TestExactKindsSortedOrder(t *testing.T) {
	for _, k := range exactKinds {
		t.Run(k.String(), func(t *testing.T) {
			q := New(k, Config{NumBuckets: 512, Granularity: 1})
			rng := rand.New(rand.NewSource(int64(k)))
			var ranks []uint64
			for i := 0; i < 500; i++ {
				r := uint64(rng.Intn(512))
				ranks = append(ranks, r)
				q.Enqueue(&bucket.Node{}, r)
			}
			sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
			for i, want := range ranks {
				n := q.DequeueMin()
				if n == nil || n.Rank() != want {
					t.Fatalf("dequeue %d: got %v, want %d", i, n, want)
				}
			}
		})
	}
}

func TestAllKindsRemove(t *testing.T) {
	for _, k := range allKinds {
		t.Run(k.String(), func(t *testing.T) {
			q := New(k, Config{NumBuckets: 64, Granularity: 1})
			n1, n2, n3 := &bucket.Node{}, &bucket.Node{}, &bucket.Node{}
			q.Enqueue(n1, 10)
			q.Enqueue(n2, 20)
			q.Enqueue(n3, 30)
			q.Remove(n2)
			if q.Len() != 2 {
				t.Fatalf("Len = %d, want 2", q.Len())
			}
			a, b := q.DequeueMin(), q.DequeueMin()
			if a != n1 || b != n3 {
				t.Fatal("wrong elements after Remove")
			}
		})
	}
}

func TestAllKindsPeekMin(t *testing.T) {
	for _, k := range allKinds {
		t.Run(k.String(), func(t *testing.T) {
			q := New(k, Config{NumBuckets: 64, Granularity: 1})
			if _, ok := q.PeekMin(); ok {
				t.Fatal("PeekMin on empty should report !ok")
			}
			q.Enqueue(&bucket.Node{}, 42)
			r, ok := q.PeekMin()
			if !ok || r != 42 {
				t.Fatalf("PeekMin = (%d,%v), want (42,true)", r, ok)
			}
			if q.Len() != 1 {
				t.Fatal("PeekMin must not remove")
			}
		})
	}
}

func TestChooseDecisionTree(t *testing.T) {
	cases := []struct {
		c    Characteristics
		want Kind
	}{
		// Fixed small range (e.g. 8 strict priorities): any queue.
		{Characteristics{MovingRange: false, PriorityLevels: 8}, KindBinaryHeap},
		// Fixed large range (e.g. pFabric remaining size): FFS.
		{Characteristics{MovingRange: false, PriorityLevels: 100000}, KindFFS},
		// Moving range, skewed occupancy (wide-range rate limiting): cFFS.
		{Characteristics{MovingRange: true, PriorityLevels: 20000}, KindCFFS},
		// Moving range, uniform occupancy (LSTF, hClock tags): approx.
		{Characteristics{MovingRange: true, PriorityLevels: 20000, UniformOccupancy: true}, KindCApprox},
	}
	for _, c := range cases {
		if got := Choose(c.c); got != c.want {
			t.Errorf("Choose(%+v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range allKinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}
