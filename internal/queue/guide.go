package queue

// Characteristics describes a scheduling algorithm for the Figure 20
// decision tree.
type Characteristics struct {
	// MovingRange: do rank values advance over time (transmission
	// timestamps, deadlines, virtual finish times) rather than span a
	// fixed set (strict priority levels, bounded remaining-size)?
	MovingRange bool
	// PriorityLevels is the number of distinct priority levels (buckets)
	// the policy needs.
	PriorityLevels int
	// UniformOccupancy: are all priority levels expected to serve a
	// similar number of packets (timestamp pacing, LSTF, EDF) as opposed
	// to skewed occupancy (strict priority, wide-range rate limits)?
	UniformOccupancy bool
}

// ChooseThreshold is the priority-level count below which the paper found
// the choice of queue immaterial (§5.2: "we found in our experiments that
// this threshold is 1k").
const ChooseThreshold = 1000

// Choose implements the Figure 20 decision tree: it returns the recommended
// backend kind for a scheduling algorithm with the given characteristics.
//
//	moving range? ── no ── levels > threshold? ── no ──> any queue (binary heap)
//	     │                        └──────────── yes ──> FFS (fixed range)
//	    yes
//	     │
//	uniform occupancy? ── yes ──> approximate gradient (circular)
//	     └─────────────── no ───> cFFS
func Choose(c Characteristics) Kind {
	if !c.MovingRange {
		if c.PriorityLevels > ChooseThreshold {
			return KindFFS
		}
		return KindBinaryHeap
	}
	if c.UniformOccupancy {
		return KindCApprox
	}
	return KindCFFS
}
