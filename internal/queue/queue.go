// Package queue defines the common priority-queue contract every Eiffel
// backend satisfies, a registry for constructing backends by kind (the
// experiment harness sweeps them), and the Figure 20 decision guide for
// picking a backend from scheduling-policy characteristics.
package queue

import (
	"fmt"

	"eiffel/internal/bheapq"
	"eiffel/internal/bucket"
	"eiffel/internal/cmpq"
	"eiffel/internal/ffsq"
	"eiffel/internal/gradq"
)

// PQ is a min-priority queue over intrusive nodes. Bucketed backends
// quantize ranks to their granularity; the approximate backends may return
// a near-minimum element (see gradq). All backends preserve FIFO order
// among equal-bucket elements except the comparison heaps, which are
// unstable.
type PQ interface {
	// Enqueue inserts n with the given rank.
	Enqueue(n *bucket.Node, rank uint64)
	// DequeueMin removes and returns the minimum element, or nil.
	DequeueMin() *bucket.Node
	// PeekMin returns the (bucket-quantized) minimum rank, or ok=false.
	PeekMin() (uint64, bool)
	// Remove detaches a queued node.
	Remove(n *bucket.Node)
	// Len returns the number of queued elements.
	Len() int
}

// Kind names a queue backend.
type Kind int

// Backend kinds.
const (
	// KindCFFS is the circular hierarchical FFS queue — Eiffel's default.
	KindCFFS Kind = iota
	// KindFFS is a fixed-range hierarchical FFS queue.
	KindFFS
	// KindFFSFlat is a fixed-range FFS queue with sequential word scan.
	KindFFSFlat
	// KindApprox is the approximate gradient queue (fixed range).
	KindApprox
	// KindCApprox is the circular approximate gradient queue.
	KindCApprox
	// KindBH is the bucketed queue with a binary-heap occupancy index.
	KindBH
	// KindBinaryHeap is a comparison-based binary heap (no buckets).
	KindBinaryHeap
	// KindPairingHeap is a comparison-based pairing heap (no buckets).
	KindPairingHeap
	// KindRBTree is a comparison-based red-black tree (no buckets).
	KindRBTree
)

// String returns the short name used in experiment tables.
func (k Kind) String() string {
	switch k {
	case KindCFFS:
		return "cFFS"
	case KindFFS:
		return "FFS"
	case KindFFSFlat:
		return "FFS-flat"
	case KindApprox:
		return "Approx"
	case KindCApprox:
		return "cApprox"
	case KindBH:
		return "BH"
	case KindBinaryHeap:
		return "BinHeap"
	case KindPairingHeap:
		return "PairHeap"
	case KindRBTree:
		return "RBTree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config sizes a backend. Comparison-based kinds ignore all fields.
type Config struct {
	// NumBuckets is the bucket count (per half for circular kinds).
	NumBuckets int
	// Granularity is the rank width of one bucket (default 1).
	Granularity uint64
	// Start anchors the range: the base of fixed-range queues, the
	// initial window position of circular ones.
	Start uint64
	// Alpha tunes the approximate kinds (0 = default).
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.NumBuckets == 0 {
		c.NumBuckets = 1 << 14
	}
	if c.Granularity == 0 {
		c.Granularity = 1
	}
	return c
}

// New constructs a backend of the given kind.
func New(k Kind, cfg Config) PQ {
	cfg = cfg.withDefaults()
	switch k {
	case KindCFFS:
		return ffsq.NewCFFS(ffsq.CFFSOptions{
			NumBuckets:  cfg.NumBuckets,
			Granularity: cfg.Granularity,
			Start:       cfg.Start,
		})
	case KindFFS:
		return ffsq.NewFixed(cfg.NumBuckets, cfg.Granularity, cfg.Start)
	case KindFFSFlat:
		return ffsq.NewFixedFlat(cfg.NumBuckets, cfg.Granularity, cfg.Start)
	case KindApprox:
		return gradq.NewApprox(gradq.ApproxOptions{
			NumBuckets:  cfg.NumBuckets,
			Granularity: cfg.Granularity,
			Base:        cfg.Start,
			Alpha:       cfg.Alpha,
		})
	case KindCApprox:
		return gradq.NewCApprox(gradq.CApproxOptions{
			NumBuckets:  cfg.NumBuckets,
			Granularity: cfg.Granularity,
			Start:       cfg.Start,
			Alpha:       cfg.Alpha,
		})
	case KindBH:
		return bheapq.New(cfg.NumBuckets, cfg.Granularity, cfg.Start)
	case KindBinaryHeap:
		return cmpq.NewHeap()
	case KindPairingHeap:
		return cmpq.NewPairingHeap()
	case KindRBTree:
		return newRBAdapter()
	default:
		panic(fmt.Sprintf("queue: unknown kind %d", int(k)))
	}
}

// rbAdapter exposes cmpq.RBTree as a PQ. A side table maps nodes to tree
// handles; the extra bookkeeping is part of what makes tree-backed qdiscs
// expensive, so it is deliberately not optimized away.
type rbAdapter struct {
	t       *cmpq.RBTree
	handles map[*bucket.Node]*cmpq.RBNode
}

func newRBAdapter() *rbAdapter {
	return &rbAdapter{t: cmpq.NewRBTree(), handles: make(map[*bucket.Node]*cmpq.RBNode)}
}

func (a *rbAdapter) Enqueue(n *bucket.Node, rank uint64) {
	n.SetRank(rank)
	a.handles[n] = a.t.Insert(rank, n)
}

func (a *rbAdapter) DequeueMin() *bucket.Node {
	m := a.t.DeleteMin()
	if m == nil {
		return nil
	}
	n := m.Value.(*bucket.Node)
	delete(a.handles, n)
	return n
}

func (a *rbAdapter) PeekMin() (uint64, bool) {
	m := a.t.Min()
	if m == nil {
		return 0, false
	}
	return m.Key, true
}

func (a *rbAdapter) Remove(n *bucket.Node) {
	h, ok := a.handles[n]
	if !ok {
		panic("queue: Remove of a node not in this RB tree")
	}
	a.t.Delete(h)
	delete(a.handles, n)
}

func (a *rbAdapter) Len() int { return a.t.Len() }
