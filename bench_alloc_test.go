package eiffel_test

import (
	"sync"
	"testing"

	"eiffel"
)

// Steady-state hot-path benchmarks: each iteration publishes a fixed
// burst through the enqueue pipeline and drains it back out, reusing one
// runtime, one element set, and one output buffer — so after the first
// lap warms every internal buffer, allocs/op MUST be zero. CI runs these
// with -benchmem and fails the build on any nonzero allocs/op
// (scripts/check_bench_allocs.sh); TestEnqueueHotPathAllocationFree
// asserts the same property without the bench runner.

const hotBurst = 1024

// hotDrain empties q through the reused out buffer.
func hotDrain(b *testing.B, q *eiffel.ShardedQueue, out []*eiffel.Node) {
	for q.Len() > 0 {
		if q.DequeueBatch(^uint64(0), out) == 0 {
			b.Fatal("drain stalled with elements queued")
		}
	}
}

func BenchmarkHotPathEnqueuePerElement(b *testing.B) {
	q := eiffel.NewShardedQueue(eiffel.ShardedOptions{NumShards: 8})
	nodes := make([]eiffel.Node, hotBurst)
	out := make([]*eiffel.Node, 256)
	lap := func() {
		for j := range nodes {
			q.Enqueue(uint64(j), &nodes[j], uint64(j%4096))
		}
		hotDrain(b, q, out)
	}
	lap() // warm every internal buffer to its steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
}

func BenchmarkHotPathEnqueueBatched(b *testing.B) {
	q := eiffel.NewShardedQueue(eiffel.ShardedOptions{NumShards: 8})
	prod := q.NewProducer(64)
	nodes := make([]eiffel.Node, hotBurst)
	out := make([]*eiffel.Node, 256)
	lap := func() {
		for j := range nodes {
			prod.Enqueue(uint64(j), &nodes[j], uint64(j%4096))
		}
		prod.Flush()
		hotDrain(b, q, out)
	}
	lap() // warm every internal buffer to its steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
}

// BenchmarkHotPathGroupDrain holds the MULTI-consumer drain path to the
// same zero-allocs/op bar as the single-consumer paths: four persistent
// group workers (spawned before the timer so goroutine startup never
// lands in an op) each drain their consumer group's shards concurrently,
// one publish→parallel-drain lap per op. The workers coordinate through
// pre-allocated channels and a WaitGroup — nothing on the lap allocates
// once the first warming lap has grown every internal buffer.
func BenchmarkHotPathGroupDrain(b *testing.B) {
	const groups = 4
	q := eiffel.NewShardedQueue(eiffel.ShardedOptions{NumShards: 8, NumGroups: groups})
	prod := q.NewProducer(64)
	nodes := make([]eiffel.Node, hotBurst)

	var wg sync.WaitGroup
	start := make([]chan struct{}, groups)
	for g := 0; g < groups; g++ {
		start[g] = make(chan struct{}, 1)
		go func(g int) {
			out := make([]*eiffel.Node, 256)
			for range start[g] {
				for q.GroupDequeueBatch(g, ^uint64(0), out) > 0 {
				}
				wg.Done()
			}
		}(g)
	}
	lap := func() {
		for j := range nodes {
			prod.Enqueue(uint64(j), &nodes[j], uint64(j%4096))
		}
		prod.Flush()
		wg.Add(groups)
		for g := range start {
			start[g] <- struct{}{}
		}
		wg.Wait()
		if q.Len() != 0 {
			b.Fatal("group drain left elements queued")
		}
	}
	lap() // warm every internal buffer to its steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	for g := range start {
		close(start[g])
	}
}

func BenchmarkHotPathShapedEnqueueBatched(b *testing.B) {
	q := eiffel.NewShapedSharded(eiffel.ShapedShardedOptions{
		Shards: 8, HorizonNs: 1 << 20, RankSpan: 1 << 20,
	})
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = int64(i % (1 << 18))
		p.Rank = uint64((i * 131) % (1 << 20))
		ps[i] = p
	}
	out := make([]*eiffel.Packet, 256)
	now := int64(1 << 19)
	lap := func() {
		q.EnqueueBatch(ps, now)
		for q.Len() > 0 {
			if q.DequeueBatch(1<<20, out) == 0 {
				b.Fatal("drain stalled with packets queued")
			}
		}
	}
	lap() // warm every internal buffer to its steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if pool.Allocs() != hotBurst {
		b.Fatalf("packet pool allocated beyond its pre-population: %d", pool.Allocs())
	}
}

// hotPathShapedBackend is the shared body of the approximate-backend
// hot-path laps: one publish→drain lap per op through a ShapedSharded
// whose per-shard scheduler is the given backend kind. After the warming
// lap grows every bucket/slot backing array, allocs/op must be zero — the
// approximate backends ride the same //eiffel:hotpath contract as the
// exact vector store.
func hotPathShapedBackend(b *testing.B, kind eiffel.SchedBackendKind) {
	b.Helper()
	q := eiffel.NewShapedSharded(eiffel.ShapedShardedOptions{
		Shards: 8, HorizonNs: 1 << 20, RankSpan: 1 << 20,
		SchedBackend: kind,
	})
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = int64(i % (1 << 18))
		p.Rank = uint64((i * 131) % (1 << 20))
		ps[i] = p
	}
	out := make([]*eiffel.Packet, 256)
	now := int64(1 << 19)
	lap := func() {
		q.EnqueueBatch(ps, now)
		for q.Len() > 0 {
			if q.DequeueBatch(1<<20, out) == 0 {
				b.Fatal("drain stalled with packets queued")
			}
		}
	}
	lap() // warm every internal buffer to its steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if pool.Allocs() != hotBurst {
		b.Fatalf("packet pool allocated beyond its pre-population: %d", pool.Allocs())
	}
}

// BenchmarkHotPathApproxGrad holds the gradient scheduler backend's
// admission and drain paths to the zero-allocs/op bar (curvature index:
// Kahan accumulators, estimate + bounded probe on every bucket pop).
func BenchmarkHotPathApproxGrad(b *testing.B) {
	hotPathShapedBackend(b, eiffel.SchedGrad)
}

// BenchmarkHotPathApproxRIFO holds the fixed-rank-window backend's
// admission and drain paths to the zero-allocs/op bar (one shift per
// enqueue, bitmap TZCNT per pop).
func BenchmarkHotPathApproxRIFO(b *testing.B) {
	hotPathShapedBackend(b, eiffel.SchedRIFO)
}

func BenchmarkHotPathPolicyBatched(b *testing.B) {
	q, err := eiffel.NewPolicySharded(eiffel.PolicyShardedOptions{
		Policy: `
			root ranker=strict
			leaf pf parent=root kind=flow policy=pfabric buckets=4096 gran=64
		`,
		Shards: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i % 64)
		p.Size = 1500
		p.Rank = uint64((hotBurst - i) * 1500 % (1 << 19))
		ps[i] = p
	}
	out := make([]*eiffel.Packet, 256)
	lap := func() {
		q.EnqueueBatch(ps, 0)
		for q.Len() > 0 {
			if q.DequeueBatch(0, out) == 0 {
				b.Fatal("drain stalled with packets queued")
			}
		}
	}
	lap() // warm flow tables, rings, and staging to steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if pool.Allocs() != hotBurst {
		b.Fatalf("packet pool allocated beyond its pre-population: %d", pool.Allocs())
	}
}

// BenchmarkHotPathHierSched holds the sharded hierarchical-QoS path to
// the zero-allocs/op bar: each lap admits a burst spanning a weighted
// tenant, a reservation holder, and a ranked-policy tenant (so the lap
// covers the three-tag charge cycle, the timed migrate/reservation
// checks, the FIFO and rank-queue in-tenant paths, and the cross-shard
// share-time merge) and drains it back out through DequeueBatch.
func BenchmarkHotPathHierSched(b *testing.B) {
	q, err := eiffel.NewHierSharded(eiffel.HierShardedOptions{
		Spec: eiffel.HierSpec{
			Tenants: []eiffel.HierTenant{
				{Weight: 3},
				{ResBps: 200e6, Weight: 1},
				{Weight: 2, Policy: "rank", Buckets: 4096, RankGran: 64},
			},
		},
		Shards: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i % 64)
		p.Size = 1500
		p.Class = int32(i % 3)
		p.Rank = uint64((hotBurst - i) * 1500 % (1 << 18))
		ps[i] = p
	}
	out := make([]*eiffel.Packet, 256)
	lap := func() {
		q.EnqueueBatch(ps, 0)
		for q.Len() > 0 {
			if q.DequeueBatch(0, out) == 0 {
				b.Fatal("drain stalled with packets queued")
			}
		}
	}
	lap() // warm tenant FIFOs, rank queues, rings, and staging
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if pool.Allocs() != hotBurst {
		b.Fatalf("packet pool allocated beyond its pre-population: %d", pool.Allocs())
	}
}

// tryCountSink is a FallibleSink that always accepts everything — the
// fault-free path BenchmarkHotPathEgressTx measures.
type tryCountSink struct{ n int }

func (s *tryCountSink) TryTx(ps []*eiffel.Packet) (int, error) {
	s.n += len(ps)
	return len(ps), nil
}

// BenchmarkHotPathEgressTx holds the RESILIENT egress path to the
// zero-allocs/op bar on its fault-free fast path: each lap admits a
// burst through the parallel front's refusable TryEnqueue and drains it
// group by group through a ResilientSink whose underlying TryTx accepts
// every batch first try — so the lap covers the full retry machinery's
// entry (progress cursor, egress accounting: two atomic adds per batch)
// without ever touching the failure path (no clock reads, no backoff,
// no drops). Any allocation is a regression in the admission path, the
// group drain, or the retry wrapper itself.
func BenchmarkHotPathEgressTx(b *testing.B) {
	var opt eiffel.MultiShardedOptions
	opt.Shards = 8
	opt.HorizonNs = 1 << 20
	opt.Groups = 2
	q := eiffel.NewMultiSharded(opt)
	inner := &tryCountSink{}
	sink := eiffel.NewResilientSink(inner, eiffel.RetryPolicy{}, nil)
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i)
		p.SendAt = int64(i % (1 << 18))
		ps[i] = p
	}
	out := make([]*eiffel.Packet, 256)
	now := int64(1 << 19)
	lap := func() {
		for _, p := range ps {
			if !q.TryEnqueue(p, now) {
				b.Fatal("TryEnqueue refused on an open unbounded front")
			}
		}
		for g := 0; g < q.NumGroups(); g++ {
			for {
				k := q.GroupDequeueBatch(g, 1<<20, out)
				if k == 0 {
					break
				}
				sink.Tx(out[:k])
			}
		}
		if q.Len() != 0 {
			b.Fatal("drain left packets queued")
		}
	}
	lap() // warm rings, buckets, and the drain scratch to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if got := sink.Egress().Txd(); got != uint64((b.N+1)*hotBurst) {
		b.Fatalf("egress accounting txd=%d, want %d", got, (b.N+1)*hotBurst)
	}
	if inner.n != (b.N+1)*hotBurst {
		b.Fatalf("sink saw %d packets, want %d", inner.n, (b.N+1)*hotBurst)
	}
}

// BenchmarkHotPathChurnAdmit holds the bounded-admission path to the
// zero-allocs/op bar: each lap offers a burst through EnqueueBatchAdmit
// against a shard bound tight enough that a slice of every burst is
// REFUSED (so the refusal bookkeeping — the runtime's reject buffer, the
// qdisc's returned slice, the per-tenant drop counters — is on the
// measured path, not just the happy path), then drains the admitted
// backlog. After the warming lap grows both reusable reject buffers to
// their steady-state capacity, allocs/op must be zero.
func BenchmarkHotPathChurnAdmit(b *testing.B) {
	q, err := eiffel.NewPolicySharded(eiffel.PolicyShardedOptions{
		Policy: `
			root ranker=strict
			leaf pf parent=root kind=flow policy=pfabric buckets=4096 gran=64
		`,
		Shards:     8,
		ShardBound: 96, // 1024-packet bursts over 8 shards: ~128 offered per shard
		Admit:      eiffel.AdmitDropTail,
		Tenants:    4,
		EvictAfter: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := eiffel.NewPool(hotBurst)
	ps := make([]*eiffel.Packet, hotBurst)
	for i := range ps {
		p := pool.Get()
		p.Flow = uint64(i % 64)
		p.Size = 1500
		p.Class = int32(i % 4)
		p.Rank = uint64((hotBurst - i) * 1500 % (1 << 19))
		ps[i] = p
	}
	rej := make([]*eiffel.Packet, 0, hotBurst)
	out := make([]*eiffel.Packet, 256)
	lap := func() {
		var admitted int
		admitted, rej = q.EnqueueBatchAdmit(ps, 0, rej[:0])
		if admitted+len(rej) != hotBurst {
			b.Fatalf("admitted %d + rejected %d != offered %d", admitted, len(rej), hotBurst)
		}
		if len(rej) == 0 {
			b.Fatal("bound never triggered; the refusal path is unmeasured")
		}
		for q.Len() > 0 {
			if q.DequeueBatch(0, out) == 0 {
				b.Fatal("drain stalled with packets queued")
			}
		}
	}
	lap() // warm rings, flow tables, and both reject buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lap()
	}
	b.StopTimer()
	if pool.Allocs() != hotBurst {
		b.Fatalf("packet pool allocated beyond its pre-population: %d", pool.Allocs())
	}
}
