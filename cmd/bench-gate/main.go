// Command bench-gate is the bench-trajectory regression gate: it diffs a
// fresh quick-mode eiffel-bench JSON directory against the committed
// baseline (bench/baseline/BENCH_*.json) and fails on throughput collapse
// or hot-path allocation growth.
//
// Usage:
//
//	bench-gate -baseline bench/baseline -fresh /tmp/fresh
//
// Rows are matched structurally, not by position: every numeric leaf gets
// a path built from the object's string/bool identity fields (qdisc name,
// backend, policy, mode, ...), so reordering or appending rows never
// misaligns the comparison, and rows present on only one side are
// reported but do not fail the gate (experiments are allowed to grow).
//
// Two checks, applied to every matched leaf:
//
//   - *.mpps — fresh must stay above tolerance × baseline. The default
//     tolerance (0.35) is deliberately loose: quick-mode runs on shared
//     CI machines jitter by 2-3×, so this is a CATASTROPHIC-regression
//     smoke (an accidentally serialized fast path, a lock on the wrong
//     side), not a performance benchmark. Tighten with -mpps-tolerance
//     on quiet hardware.
//   - *.allocs_per_op — compared at integer resolution (round half up):
//     any increase in whole allocations per packet fails. A real leak on
//     a hot path costs ≥1 alloc/op and always trips; sub-0.5 noise from
//     harness goroutines never does.
//
// Baselines should be conservative, not lucky: refresh them with
//
//	bench-gate -write-baseline run1,run2,...,runN -out bench/baseline
//
// which merges N independent quick runs element-wise, keeping the MINIMUM
// mpps and MAXIMUM allocs_per_op seen per row (scripts/
// refresh_bench_baseline.sh drives this). A baseline that records each
// row's slowest observed run keeps the gate quiet under scheduler jitter
// while still catching an order-of-magnitude collapse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	var (
		baseDir = flag.String("baseline", "bench/baseline", "directory with committed BENCH_*.json baselines")
		fresh   = flag.String("fresh", "", "directory with freshly generated BENCH_*.json payloads")
		tol     = flag.Float64("mpps-tolerance", 0.35, "fresh mpps must be at least this fraction of baseline")
		merge   = flag.String("write-baseline", "", "comma-separated run directories to merge into a conservative baseline")
		outDir  = flag.String("out", "", "output directory for -write-baseline")
	)
	flag.Parse()
	if *merge != "" {
		if err := writeBaseline(strings.Split(*merge, ","), *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "bench-gate: -fresh is required")
		os.Exit(2)
	}

	baselines, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "bench-gate: no baselines under %s\n", *baseDir)
		os.Exit(2)
	}
	sort.Strings(baselines)

	failures := 0
	for _, basePath := range baselines {
		name := filepath.Base(basePath)
		freshPath := filepath.Join(*fresh, name)
		base, err := loadLeaves(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-gate: %s: %v\n", basePath, err)
			os.Exit(2)
		}
		cur, err := loadLeaves(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-gate: FAIL %s: fresh payload missing or unreadable: %v\n", name, err)
			failures++
			continue
		}
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := base[k]
			cv, ok := cur[k]
			if !ok {
				// A renamed or retired row: surface it so baseline refreshes
				// are deliberate, but growth/rename alone is not a regression.
				fmt.Printf("bench-gate: note %s: %s present only in baseline\n", name, k)
				continue
			}
			switch {
			case strings.HasSuffix(k, ".mpps"):
				if floor := bv * *tol; cv < floor {
					fmt.Printf("bench-gate: FAIL %s: %s = %.3f Mpps, below %.0f%% of baseline %.3f\n",
						name, k, cv, *tol*100, bv)
					failures++
				}
			case strings.HasSuffix(k, ".allocs_per_op"):
				if math.Round(cv) > math.Round(bv) {
					fmt.Printf("bench-gate: FAIL %s: %s = %.3f allocs/op, baseline %.3f (whole-alloc increase)\n",
						name, k, cv, bv)
					failures++
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-gate: %d regression(s); refresh bench/baseline/ deliberately if intended\n", failures)
		os.Exit(1)
	}
	fmt.Printf("bench-gate: %d payload(s) within tolerance\n", len(baselines))
}

// loadLeaves parses a payload into numeric leaves keyed by identity path.
func loadLeaves(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(buf, &v); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	flatten("", v, out)
	return out, nil
}

// flatten walks the JSON tree collecting numeric leaves. Array elements
// that are objects are keyed by their string/bool fields (sorted), so the
// path identifies the row regardless of its position.
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, t[k], out)
		}
	case []any:
		for i, e := range t {
			m, ok := e.(map[string]any)
			if !ok {
				continue // scalar series carry no identity; skip
			}
			id := identity(m)
			if id == "" {
				id = fmt.Sprintf("#%d", i)
			}
			flatten(prefix+"["+id+"]", m, out)
		}
	case float64:
		out[prefix] = t
	}
}

// writeBaseline merges the payloads of several independent runs into a
// conservative baseline: element-wise minimum for mpps leaves, maximum
// for allocs_per_op leaves, first run's value otherwise. Runs of the same
// experiment produce structurally identical trees (fixed seeds, fixed row
// sets), so the merge walks them by position.
func writeBaseline(runs []string, out string) error {
	if out == "" {
		return fmt.Errorf("-write-baseline requires -out")
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	first, err := filepath.Glob(filepath.Join(runs[0], "BENCH_*.json"))
	if err != nil || len(first) == 0 {
		return fmt.Errorf("no BENCH_*.json under %s", runs[0])
	}
	sort.Strings(first)
	for _, p := range first {
		name := filepath.Base(p)
		merged, err := loadTree(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		for _, run := range runs[1:] {
			next, err := loadTree(filepath.Join(run, name))
			if err != nil {
				return fmt.Errorf("%s/%s: %w", run, name, err)
			}
			merged = mergeTrees("", merged, next)
		}
		buf, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, name), append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench-gate: wrote %s (merged %d runs)\n", filepath.Join(out, name), len(runs))
	}
	return nil
}

func loadTree(path string) (any, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	err = json.Unmarshal(buf, &v)
	return v, err
}

// mergeTrees folds b into a, keyed by structure; key is the JSON field
// name of the current node, which selects the merge rule for leaves.
func mergeTrees(key string, a, b any) any {
	switch ta := a.(type) {
	case map[string]any:
		tb, ok := b.(map[string]any)
		if !ok {
			return a
		}
		for k, av := range ta {
			if bv, ok := tb[k]; ok {
				ta[k] = mergeTrees(k, av, bv)
			}
		}
		return ta
	case []any:
		tb, ok := b.([]any)
		if !ok {
			return a
		}
		for i := range ta {
			if i < len(tb) {
				ta[i] = mergeTrees(key, ta[i], tb[i])
			}
		}
		return ta
	case float64:
		fb, ok := b.(float64)
		if !ok {
			return a
		}
		switch key {
		case "mpps":
			return math.Min(ta, fb)
		case "allocs_per_op":
			return math.Max(ta, fb)
		}
		return ta
	}
	return a
}

// identity renders an object's string and bool fields as a stable row key.
func identity(m map[string]any) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			parts = append(parts, k+"="+v)
		case bool:
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	return strings.Join(parts, ",")
}
