// Command eiffel-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	eiffel-bench -list
//	eiffel-bench -experiment fig16
//	eiffel-bench -experiment all -quick
//
// Quick mode shrinks workloads for seconds-scale runs; the default scales
// approach the paper's parameters (minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eiffel/internal/exp"
)

func main() {
	var (
		name  = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		quick = flag.Bool("quick", false, "reduced workloads for fast runs")
		seed  = flag.Int64("seed", 1, "workload seed")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}

	opts := exp.Options{Quick: *quick, Seed: *seed}
	run := func(id string) {
		r, ok := exp.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := r(opts)
		fmt.Print(res.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *name == "all" {
		for _, id := range exp.Names() {
			run(id)
		}
		return
	}
	run(*name)
}
