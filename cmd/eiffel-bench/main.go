// Command eiffel-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	eiffel-bench -list
//	eiffel-bench -experiment fig16
//	eiffel-bench -experiment all -quick
//
// Quick mode shrinks workloads for seconds-scale runs; the default scales
// approach the paper's parameters (minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"eiffel/internal/exp"
)

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		quick   = flag.Bool("quick", false, "reduced workloads for fast runs")
		seed    = flag.Int64("seed", 1, "workload seed")
		list    = flag.Bool("list", false, "list experiment ids")
		jsonDir = flag.String("json", "", "directory to write BENCH_<id>.json payloads (experiments that emit one)")
	)
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}

	opts := exp.Options{Quick: *quick, Seed: *seed}
	run := func(id string) {
		r, ok := exp.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := r(opts)
		fmt.Print(res.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *jsonDir != "" && res.JSON != nil {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "mkdir %s: %v\n", *jsonDir, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+res.ID+".json")
			buf, err := json.MarshalIndent(res.JSON, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshal %s payload: %v\n", id, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if *name == "all" {
		for _, id := range exp.Names() {
			run(id)
		}
		return
	}
	run(*name)
}
