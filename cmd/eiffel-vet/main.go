// Command eiffel-vet machine-checks the runtime's concurrency and
// hot-path invariants. It loads the requested packages from source,
// extracts the //eiffel: annotations, and runs the four analyzers in
// internal/analysis over every package:
//
//	lockcheck    //eiffel:locked callees reached only under their mutex,
//	             //eiffel:guarded fields never mixed locked/unlocked
//	atomicfield  sync/atomic-managed fields never accessed plainly, and
//	             64-bit aligned under 32-bit layout
//	hotpath      //eiffel:hotpath call graphs free of allocating constructs
//	publication  slot-memory stores confined to their publish helpers
//
// Usage:
//
//	go run ./cmd/eiffel-vet ./...
//	go run ./cmd/eiffel-vet ./internal/shardq ./internal/qdisc
//	go run ./cmd/eiffel-vet -hotpaths ./...   # inventory of annotated hot functions
//
// Diagnostics print as file:line:col: analyzer: message; any diagnostic
// makes the command exit 1, which is how CI gates on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"eiffel/internal/analysis"
	"eiffel/internal/analysis/atomicfield"
	"eiffel/internal/analysis/hotpath"
	"eiffel/internal/analysis/lockcheck"
	"eiffel/internal/analysis/publication"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	atomicfield.Analyzer,
	hotpath.Analyzer,
	publication.Analyzer,
}

func main() {
	hotpaths := flag.Bool("hotpaths", false, "list every //eiffel:hotpath function instead of running the analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: eiffel-vet [-hotpaths] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "eiffel-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eiffel-vet:", err)
		os.Exit(2)
	}

	if *hotpaths {
		listHotpaths(pkgs)
		return
	}

	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers, loader.Annotations)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eiffel-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			failed = true
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// listHotpaths prints every annotated hotpath function as
// "<import path> <display name> <position>", sorted, for
// scripts/check_bench_allocs.sh to cross-reference failing benchmarks
// against the statically-checked function set.
func listHotpaths(pkgs []*analysis.Package) {
	var lines []string
	for _, pkg := range pkgs {
		for fn, fa := range pkg.Annot.Funcs {
			if !fa.Hotpath {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s %s %s",
				pkg.Path, analysis.FuncDisplayName(fn), pkg.Fset.Position(fa.Decl.Pos())))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
